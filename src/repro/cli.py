"""Command-line interface: ``pres`` (or ``python -m repro``).

Subcommands::

    pres bugs                         list the evaluated bug suite
    pres find-seed BUG                find a failing production run
    pres record BUG [--sketch SYNC]   record a production run, show stats
    pres analyze LOG [--json]         predict races/deadlocks from a sketch
    pres analyze BUG --static         predict them from program structure
    pres reproduce BUG [...]          full pipeline: record -> PIR -> log
    pres replay BUG --log FILE        deterministic replay of a saved log
    pres inspect TRACE                render a saved observability trace
    pres doctor LOG [--out FILE]      validate/salvage an on-disk artifact
    pres store stats|verify|gc DIR    manage a cross-run attempt store
    pres serve [--port N]             run the reproduction service (HTTP)
    pres submit BUG [--wait]          submit a job to a running service
    pres jobs [--tenant T]            list jobs on a running service

Replay as a service (see docs/service.md): ``pres serve`` runs a
long-lived multi-tenant server that accepts reproduction jobs over HTTP
and multiplexes them over one warm engine — a shared replay worker pool
and a per-tenant cross-run attempt store — so repeat reproductions cost
a store lookup instead of a cold exploration.  Reports are byte-identical
to the serial CLI (``pres reproduce --report-out`` vs ``pres submit
--wait --report-out``).

Cross-run attempt store (see docs/store.md): ``reproduce --store DIR``
persists every replay-attempt outcome to a crash-safe, sharded store and
answers repeat attempts from it — a warm second reproduction of the same
recording replays nothing live and reports the identical schedule.
``pres store`` exposes the maintenance surface: ``stats`` (size/record
totals), ``verify`` (per-shard integrity; exit 1 on damage), and ``gc
--max-records N`` (deterministic oldest-recorded-first eviction).

Predictive analysis (see docs/internals.md, "Predictive analysis"):
``analyze`` runs the sanitizer over a saved sketch log (binary,
compressed, or JSON — sniffed by magic) and prints the ranked
:class:`~repro.sanitize.plan.ReplayPlan`; ``reproduce --plan`` records a
rich RW sketch of the same run, builds the plan from it, and seeds the
plan's candidates into the first replay attempts at the requested
(coarser) ``--sketch`` level.

Static analysis (see docs/predictive-analysis.md, "Static analysis"):
``analyze BUG --static`` needs no log at all — it walks the program's
thread bodies, builds the shared-variable access map, static locksets
and may-happen-in-parallel intervals, and prints ranked race /
atomicity / deadlock candidates (``--failure TEXT`` filters them to a
bug report's def-use slice).  ``reproduce --static`` seeds those
candidates into exploration at ``TIER_STATIC`` — after any dynamic plan
seeds, before mined flips — and ``reproduce --static-plan FILE`` reuses
a saved plan instead of re-analyzing.

Observability flags (see docs/observability.md): ``reproduce`` accepts
``--trace-out FILE`` (Chrome ``trace_event`` JSON — open in Perfetto or
feed to ``pres inspect``) and ``--metrics-out FILE`` (counters / gauges /
histograms snapshot); ``bench`` accepts the same pair; ``doctor`` accepts
``--metrics-out``.  The reproduced execution JSONL that ``--trace-out``
used to write now lives under ``--exec-out``.

Fault tolerance flags (see docs/internals.md, "Fault tolerance"):
``record``/``reproduce`` accept ``--journal`` (crash-consistent sketch
journaling) and ``--inject-fault kill@K|truncate@N|garble@S|drop@S``;
``reproduce`` accepts ``--salvage`` and ``--degrade``; ``replay`` accepts
``--salvage`` to replay the recovered prefix of a torn trace journal.
Parse errors in on-disk artifacts exit 2 with a message — never a
traceback.

Resilience flags (see docs/resilience.md): ``reproduce`` accepts
``--attempt-timeout`` / ``--max-retries`` (worker supervision: deadlines,
retry with deterministic backoff, pool rebuild, serial fallback),
``--run-id`` / ``--resume`` / ``--runs DIR`` (resumable run journals: a
resumed run replays only undecided attempts and reports byte-identical
results), and ``--chaos SPEC`` (seeded fault injection —
``crash=P,hang=P,corrupt=P,seed=N`` — under which reported results still
match the fault-free run).  ``pres doctor DIR`` triages a store
directory; ``--clean`` removes stale temp files a killed run left.  A
``Ctrl-C`` during ``reproduce`` terminates workers, flushes the run
journal, prints the partial report, and exits 130 — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.apps import all_bugs, get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.full_replay import CompleteLog, replay_complete
from repro.core.diagnose import diagnose
from repro.core.epochs import EpochConfig
from repro.core.recorder import record
from repro.core.reproducer import (
    render_report,
    reproduce,
    reproduce_degraded,
    reproduce_windowed,
)
from repro.core.sketches import parse_sketch_kind
from repro.errors import RecorderKilled, SimUsageError, SketchFormatError
from repro.obs.session import ObsSession
from repro.robust.atomic import atomic_write_text
from repro.sim import MachineConfig


def _obs_from_args(args) -> Optional[ObsSession]:
    """A live session when ``--trace-out``/``--metrics-out`` ask for one.

    Metrics are always collected alongside a trace (the snapshot is cheap
    and the pair is how the docs teach reading a session), so
    ``--trace-out`` alone still yields a metrics-capable session.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        return None
    return ObsSession.create(trace=bool(trace_out), metrics=True)


def _write_obs(args, obs: Optional[ObsSession]) -> None:
    """Flush the session's artifacts to the paths the user asked for."""
    if obs is None:
        return
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out:
        obs.write_trace(trace_out)
        print(f"observability trace written to {trace_out} "
              "(open in Perfetto, or `pres inspect`)")
    if metrics_out:
        obs.write_metrics(metrics_out)
        print(f"metrics snapshot written to {metrics_out}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("bug", help="bug id from `pres bugs`")
    parser.add_argument("--sketch", default="sync",
                        help="none|sync|sys|func|bb|rw (default: sync)")
    parser.add_argument("--seed", type=int, default=None,
                        help="production-run seed (default: search)")
    parser.add_argument("--ncpus", type=int, default=4)


def _add_epoch_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epoch-steps", type=int, default=0, metavar="N",
                        help="cut an epoch boundary (with a state snapshot) "
                             "every N scheduler steps; 0 disables epoch "
                             "recording (default)")
    parser.add_argument("--epoch-window", type=int, default=0, metavar="K",
                        help="retain only the trailing K epochs of sketch "
                             "entries and snapshots; 0 keeps everything "
                             "(default)")


def _epoch_config(args) -> Optional[EpochConfig]:
    """The :class:`EpochConfig` the epoch flags describe, or ``None``."""
    if not args.epoch_steps and not args.epoch_window:
        return None
    if not args.epoch_steps:
        raise SimUsageError(
            "--epoch-window needs --epoch-steps (a window of epochs only "
            "exists once boundaries are being cut)"
        )
    return EpochConfig(
        steps=args.epoch_steps, window=args.epoch_window
    ).validate()


def _resolve_seed(args, spec) -> Optional[int]:
    if args.seed is not None:
        return args.seed
    print(f"searching for a failing production run of {spec.bug_id} ...")
    seed = find_failing_seed(spec, ncpus=args.ncpus)
    if seed is None:
        print("no failing seed found within the search budget", file=sys.stderr)
        return None
    print(f"found failing seed {seed}")
    return seed


def cmd_bugs(args) -> int:
    for spec in all_bugs():
        print(spec.describe())
    return 0


def cmd_find_seed(args) -> int:
    spec = get_bug(args.bug)
    seed = find_failing_seed(spec, budget=args.budget, ncpus=args.ncpus)
    if seed is None:
        print("no failing seed found", file=sys.stderr)
        return 1
    print(seed)
    return 0


def _parse_fault_arg(spec: Optional[str]):
    """Parse --inject-fault, turning bad specs into exit-code-2 errors."""
    if spec is None:
        return None
    from repro.robust.inject import parse_fault

    return parse_fault(spec)


def _inject_file_fault(path: str, plan) -> None:
    from repro.robust.inject import apply_fault

    print(f"fault injected: {apply_fault(path, plan)}")


def cmd_record(args) -> int:
    spec = get_bug(args.bug)
    seed = _resolve_seed(args, spec)
    if seed is None:
        return 1
    fault = _parse_fault_arg(args.inject_fault)
    kill_at = fault.arg if fault is not None and fault.kind == "kill" else None
    if fault is not None and fault.kind != "kill" and not (args.journal or args.out):
        print("--inject-fault needs --journal or --out to damage", file=sys.stderr)
        return 2
    try:
        recorded = record(
            spec.make_program(),
            sketch=parse_sketch_kind(args.sketch),
            seed=seed,
            config=MachineConfig(ncpus=args.ncpus),
            oracle=spec.oracle,
            journal_path=args.journal,
            kill_at_event=kill_at,
            epochs=_epoch_config(args),
        )
    except RecorderKilled as killed:
        print(f"fault injected: {killed}")
        if args.journal:
            from repro.robust.journal import salvage

            print(salvage(args.journal).describe())
        return 0
    print(recorded.describe())
    if recorded.epochs is not None:
        print(f"epochs: {recorded.epochs.describe()}")
    if args.journal:
        print(f"sketch journal written to {args.journal}")
    if args.out:
        atomic_write_text(args.out, recorded.log.to_json())
        print(f"sketch log written to {args.out}")
    if fault is not None and fault.kind != "kill":
        _inject_file_fault(args.journal or args.out, fault)
    return 0


def _load_sketch_log(path: str):
    """Load a sketch log from disk, sniffing the format by magic.

    Accepts all three on-disk encodings (binary ``PRES``, compressed
    ``PREZ``, JSON); damage surfaces as :class:`SketchFormatError`, which
    :func:`main` turns into exit code 2 plus the ``pres doctor`` hint.
    """
    from repro.core.sketchlog import SketchLog

    with open(path, "rb") as handle:
        data = handle.read()
    if data[:4] == b"PRES":
        return SketchLog.from_bytes(data)
    if data[:4] == b"PREZ":
        return SketchLog.from_bytes_compressed(data)
    return SketchLog.from_json(data.decode("utf-8"))


def cmd_analyze(args) -> int:
    from repro.sanitize import build_plan

    if args.static:
        return _cmd_analyze_static(args)
    if args.failure:
        print("--failure only applies to --static (the dynamic sanitizer "
              "already knows the recorded failure)", file=sys.stderr)
        return 2
    log = _load_sketch_log(args.log)
    plan = build_plan(log, max_candidates=args.max_candidates)
    if args.json:
        print(plan.to_json())
    else:
        print(f"analyzed {len(log)} {log.sketch.value} entries "
              f"from {args.log}")
        print(plan.describe())
    if args.out:
        atomic_write_text(args.out, plan.to_json())
        print(f"replay plan written to {args.out}")
    return 0


def _cmd_analyze_static(args) -> int:
    """``pres analyze BUG --static``: no log, no execution — the plan
    comes from walking the program's thread bodies."""
    from repro.analysis.static_ import analyze_program

    spec = get_bug(args.log)
    plan = analyze_program(
        spec.make_program(),
        failure=args.failure,
        max_candidates=args.max_candidates,
    )
    if args.json:
        print(plan.to_json())
    else:
        print(f"statically analyzed {spec.bug_id} "
              f"({len(plan.threads)} thread(s), "
              f"{len(plan.regions)} shared region(s))")
        print(plan.describe())
    if args.out:
        atomic_write_text(args.out, plan.to_json())
        print(f"static plan written to {args.out}")
    return 0


def cmd_reproduce(args) -> int:
    spec = get_bug(args.bug)
    if args.run_id and args.resume:
        print("--run-id and --resume are mutually exclusive", file=sys.stderr)
        return 2
    if (args.run_id or args.resume) and args.degrade:
        print("run journals do not compose with --degrade (each rung is "
              "its own exploration); drop one of the flags", file=sys.stderr)
        return 2
    epochs = _epoch_config(args)
    if epochs is not None and args.degrade:
        print("--epoch-steps does not compose with --degrade (both are "
              "rung walks over their own exploration); drop one",
              file=sys.stderr)
        return 2
    if epochs is not None and (args.run_id or args.resume):
        print("run journals do not compose with --epoch-steps (each epoch "
              "rung is its own exploration); drop one of the flags",
              file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        from repro.robust.inject import parse_chaos

        chaos = parse_chaos(args.chaos)
    supervise = None
    if args.attempt_timeout is not None or args.max_retries is not None:
        from repro.robust.supervise import SuperviseConfig

        supervise = SuperviseConfig(
            attempt_timeout=args.attempt_timeout or 0.0,
            **({"max_retries": args.max_retries}
               if args.max_retries is not None else {}),
        )
    seed = _resolve_seed(args, spec)
    if seed is None:
        return 1
    sketch = parse_sketch_kind(args.sketch)
    fault = _parse_fault_arg(args.inject_fault)
    if fault is not None and fault.kind != "kill" and not args.journal:
        print("--inject-fault needs --journal on reproduce", file=sys.stderr)
        return 2
    kill_at = fault.arg if fault is not None and fault.kind == "kill" else None
    obs = _obs_from_args(args)
    try:
        recorded = record(
            spec.make_program(),
            sketch=sketch,
            seed=seed,
            config=MachineConfig(ncpus=args.ncpus),
            oracle=spec.oracle,
            journal_path=args.journal,
            kill_at_event=kill_at,
            epochs=epochs,
            **({"obs": obs} if obs is not None else {}),
        )
    except RecorderKilled as killed:
        print(f"fault injected: {killed}", file=sys.stderr)
        print("the recorder died before observing a failure; nothing to "
              "reproduce (salvage the journal with `pres doctor`)",
              file=sys.stderr)
        return 1
    if not recorded.failed:
        print("that production run did not fail; try another seed",
              file=sys.stderr)
        return 1
    print(f"production: {recorded.failure.describe()}")
    print(f"sketch: {len(recorded.log)} entries, "
          f"{recorded.stats.log_bytes} bytes, "
          f"overhead {recorded.stats.render_overhead()}")
    if recorded.epochs is not None:
        print(f"epochs: {recorded.epochs.describe()}")

    salvaged_entries = None
    dropped_records = 0
    if epochs is not None and (args.salvage or args.plan or args.static
                               or args.static_plan):
        print("--epoch-steps does not compose with --salvage/--plan/"
              "--static (those operate on full-history logs; the epoch "
              "walk replays windowed suffixes)", file=sys.stderr)
        return 2
    if fault is not None and fault.kind != "kill":
        _inject_file_fault(args.journal, fault)
    if args.salvage:
        if not args.journal:
            print("--salvage needs --journal on reproduce", file=sys.stderr)
            return 2
        import dataclasses

        from repro.robust.journal import load_sketch_journal

        log, salvage_report = load_sketch_journal(args.journal, allow_salvage=True)
        print(salvage_report.describe())
        recorded = dataclasses.replace(recorded, log=log)
        if not salvage_report.intact:
            salvaged_entries = len(log)
            dropped_records = salvage_report.dropped_lines

    plan = None
    if args.plan:
        from repro.core.sketches import SketchKind
        from repro.sanitize import build_plan

        # Re-record the same production run (same seed, deterministic)
        # at RW fidelity: the sanitizer reads rich, the replayer follows
        # the cheap sketch the user asked for.
        rich = record(
            spec.make_program(),
            sketch=SketchKind.RW,
            seed=seed,
            config=MachineConfig(ncpus=args.ncpus),
            oracle=spec.oracle,
        )
        plan = build_plan(rich.log)
        applicable = len(plan.seeds_for(sketch))
        print(f"plan: {len(plan.races)} race(s), "
              f"{len(plan.violations)} atomicity violation(s), "
              f"{len(plan.deadlocks)} deadlock cycle(s) predicted; "
              f"{applicable} of {len(plan.candidates)} candidate(s) "
              f"applicable at {sketch.value}")

    static_plan = None
    if args.static_plan:
        from repro.analysis.static_.model import StaticPlan

        with open(args.static_plan, "r", encoding="utf-8") as handle:
            static_plan = StaticPlan.from_json(handle.read())
    elif args.static:
        from repro.analysis.static_ import analyze_program

        # The recorded failure message is the SysPro-style artifact: it
        # narrows the static candidates to the failure's def-use slice.
        static_plan = analyze_program(
            spec.make_program(),
            failure=recorded.failure.describe(),
        )
    if static_plan is not None:
        s_applicable = len(static_plan.seeds_for(sketch))
        print(f"static plan: {len(static_plan.races)} race(s), "
              f"{len(static_plan.violations)} atomicity window(s), "
              f"{len(static_plan.deadlocks)} deadlock cycle(s); "
              f"{s_applicable} of {len(static_plan.candidates)} "
              f"candidate(s) applicable at {sketch.value}")

    config = ExplorerConfig(
        max_attempts=args.max_attempts,
        jobs=args.jobs,
        batch_size=args.batch_size,
    )
    run = None
    if args.run_id or args.resume:
        from repro.robust.runs import resume_run, run_meta, start_run

        meta = run_meta(recorded, config,
                        use_feedback=not args.no_feedback)
        if args.resume:
            run = resume_run(args.runs, args.resume, expect_meta=meta)
            print(f"resuming run {args.resume!r}: {run.resumed_attempts} "
                  f"decided attempt(s) loaded from {run.path}")
            if run.completed:
                print("run already completed; replaying it from the journal")
        else:
            run = start_run(args.runs, args.run_id, meta=meta)
            print(f"run journal: {run.path} (resume with "
                  f"--resume {args.run_id})")
    if args.degrade:
        report = reproduce_degraded(
            recorded,
            config,
            use_feedback=not args.no_feedback,
            salvaged_entries=salvaged_entries,
            dropped_records=dropped_records,
            store=args.store,
            obs=obs,
            plan=plan,
            static_plan=static_plan,
            supervise=supervise,
            chaos=chaos,
        )
        for rung in report.degradation_path:
            print(f"  rung {rung.describe()}")
        if report.outcome_reason:
            print(f"  outcome: {report.outcome_reason}")
    elif epochs is not None:
        report = reproduce_windowed(
            recorded,
            config,
            use_feedback=not args.no_feedback,
            store=args.store,
            obs=obs,
            supervise=supervise,
            chaos=chaos,
        )
        for rung in report.epoch_path:
            print(f"  rung {rung.describe()}")
        if report.outcome_reason:
            print(f"  outcome: {report.outcome_reason}")
    else:
        report = reproduce(
            recorded,
            config,
            use_feedback=not args.no_feedback,
            store=args.store,
            obs=obs,
            plan=plan,
            static_plan=static_plan,
            supervise=supervise,
            chaos=chaos,
            run=run,
        )
    if args.store:
        live = report.attempts - report.cache_hits
        print(f"store {args.store}: {report.cache_hits} attempt(s) answered "
              f"from the store, {live} replayed live")
    report_text = render_report(report)
    print(report_text, end="")
    if args.report_out:
        # The same bytes `pres submit --report-out` writes for the same
        # request — the byte-for-byte surface the CI smoke job compares.
        atomic_write_text(args.report_out, report_text)
        print(f"report written to {args.report_out}")
    # Observability artifacts flush whether or not the reproduction
    # succeeded — a failed session is precisely when the timeline matters.
    _write_obs(args, obs)
    if report.interrupted:
        # The partial report above is real; the exit code says "stopped
        # by signal" so wrappers don't mistake it for a verdict.
        print("interrupted: true")
        return 130
    if not report.success:
        return 1
    if args.out:
        atomic_write_text(args.out, report.complete_log.to_json())
        print(f"complete log written to {args.out}; replays deterministically")
    if args.exec_out:
        from repro.sim.persist import save_trace

        trace = replay_complete(
            spec.make_program(), report.complete_log, oracle=spec.oracle
        )
        save_trace(trace, args.exec_out)
        print(f"reproduced execution written to {args.exec_out}")
    return 0


def cmd_diagnose(args) -> int:
    spec = get_bug(args.bug)
    seed = _resolve_seed(args, spec)
    if seed is None:
        return 1
    sketch = parse_sketch_kind(args.sketch)
    recorded = record(
        spec.make_program(),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=args.ncpus),
        oracle=spec.oracle,
    )
    if not recorded.failed:
        print("that production run did not fail", file=sys.stderr)
        return 1
    report = reproduce(recorded, ExplorerConfig(max_attempts=args.max_attempts))
    if not report.success:
        print("could not reproduce the failure", file=sys.stderr)
        return 1
    trace = replay_complete(
        spec.make_program(), report.complete_log, oracle=spec.oracle
    )
    print(diagnose(trace).render())
    return 0


def cmd_stats(args) -> int:
    from repro.analysis import lock_order_report
    from repro.core.sketches import event_visible
    from repro.sim import Machine, RandomScheduler, trace_stats

    # Validate the sketch name *before* running anything: an unknown name
    # exits 2 with the registry's named error (lists the valid kinds)
    # instead of silently reporting stats for the wrong mechanism.
    sketch = parse_sketch_kind(args.sketch) if args.sketch else None
    spec = get_bug(args.bug)
    seed = args.seed if args.seed is not None else 0
    machine = Machine(
        spec.make_program(),
        RandomScheduler(seed),
        MachineConfig(ncpus=args.ncpus),
    )
    trace = machine.run()
    print(f"run of {spec.bug_id} (seed {seed}): "
          f"{'FAILED - ' + trace.failure.describe() if trace.failed else 'clean'}")
    print(trace_stats(trace).describe())
    print(lock_order_report(trace).describe())
    if sketch is not None:
        visible = sum(1 for e in trace.events if event_visible(sketch, e))
        total = len(trace.events)
        share = 100.0 * visible / total if total else 0.0
        print(f"{sketch.value} sketch would record {visible} of {total} "
              f"events ({share:.1f}%)")
    return 0


def cmd_bench(args) -> int:
    from repro.bench.runner import available_experiments, run_experiment_result

    if args.experiment == "list":
        for name in available_experiments():
            print(name)
        return 0
    obs = _obs_from_args(args)
    try:
        result = run_experiment_result(args.experiment, obs=obs)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if obs is not None and obs.metrics.enabled:
        # The snapshot rides inside the BenchResult JSON so one artifact
        # carries both the table and the session's instrumentation.
        result.meta["metrics"] = obs.metrics.snapshot()
    print(result.render())
    if args.json:
        path = result.write_json(args.json_dir)
        print(f"results written to {path}")
    _write_obs(args, obs)
    return 0


def cmd_inspect(args) -> int:
    from repro.obs import load_chrome_trace, render_trace

    payload = load_chrome_trace(args.trace)
    print(render_trace(payload))
    return 0


def _replay_salvaged_journal(spec, path: str) -> int:
    """Replay the salvaged schedule prefix of a (possibly torn) trace
    journal; deterministic up to the salvage horizon."""
    from repro.sim import Machine
    from repro.sim.persist import salvage_trace
    from repro.sim.scheduler import FixedOrderScheduler

    salvaged, report = salvage_trace(path)
    print(report.describe())
    machine = Machine(
        spec.make_program(),
        FixedOrderScheduler(salvaged.schedule),
        MachineConfig(ncpus=salvaged.ncpus),
    )
    trace = machine.run()
    replayed = min(len(trace.events), len(salvaged.events))
    matched = sum(
        1
        for mine, theirs in zip(trace.events, salvaged.events)
        if mine.signature() == theirs.signature()
    )
    print(f"replayed {replayed} salvaged step(s), {matched} matching")
    if trace.failure is not None:
        print(f"reproduced: {trace.failure.describe()}")
        return 0
    if matched == len(salvaged.events):
        print("salvaged prefix replayed deterministically (no failure "
              "inside the prefix)")
        return 0
    print("replay drifted from the salvaged prefix", file=sys.stderr)
    return 1


def cmd_replay(args) -> int:
    spec = get_bug(args.bug)
    if args.salvage:
        with open(args.log, "r", encoding="utf-8") as handle:
            magic = handle.read(5)
        if magic == "PRESJ":
            return _replay_salvaged_journal(spec, args.log)
    with open(args.log, "r", encoding="utf-8") as handle:
        log = CompleteLog.from_json(handle.read())
    trace = replay_complete(spec.make_program(), log, oracle=spec.oracle)
    if trace.failure is None:
        print("replay completed without the failure (wrong log?)",
              file=sys.stderr)
        return 1
    print(f"reproduced: {trace.failure.describe()}")
    return 0


def cmd_doctor(args) -> int:
    import os

    from repro.robust.doctor import (
        SALVAGEABLE,
        diagnosis_metrics,
        examine,
        examine_store,
        write_salvaged,
    )

    if os.path.isdir(args.log):
        store_diag = examine_store(args.log)
        if args.clean and store_diag.stale:
            store_diag.clean()
        print(store_diag.describe())
        if store_diag.stale and not args.clean:
            print("hint: `pres doctor --clean` removes stale temp files")
        return store_diag.exit_code
    diagnosis = examine(args.log)
    print(diagnosis.describe())
    if diagnosis.status == SALVAGEABLE:
        out = args.out or args.log + ".salvaged"
        write_salvaged(diagnosis, out)
        print(f"salvaged log written to {out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        diagnosis_metrics(diagnosis, registry)
        atomic_write_text(args.metrics_out, registry.to_json())
        print(f"metrics snapshot written to {args.metrics_out}")
    return diagnosis.exit_code


def cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import serve

    try:
        asyncio.run(serve(
            args.store,
            host=args.host,
            port=args.port,
            slots=args.slots,
            max_queued=args.max_queued,
            tenant_slots=args.tenant_slots,
            pool_jobs=args.pool_jobs,
            default_jobs=args.jobs,
            port_file=args.port_file,
        ))
    except KeyboardInterrupt:
        # The signal handler normally wins and drains gracefully; a
        # second Ctrl-C can land here.  Match the CLI-wide contract.
        print("interrupted", file=sys.stderr)
        return 130
    return 0


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.protocol import JobRequest, ProtocolError

    try:
        request = JobRequest(
            bug=args.bug,
            tenant=args.tenant,
            sketch=args.sketch,
            seed=args.seed,
            max_attempts=args.max_attempts,
            jobs=args.jobs,
            ncpus=args.ncpus,
        )
    except ProtocolError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 2
    client = ServiceClient(args.server)
    try:
        doc = client.submit(request)
        print(f"job {doc['id']} {doc['state']} (tenant {args.tenant})")
        if not args.wait:
            print(f"poll with: pres jobs --server {args.server}")
            return 0
        final = client.wait_for(doc["id"])
        if final["state"] != "done":
            detail = final.get("error", final["state"])
            print(f"job {doc['id']} {final['state']}: {detail}", file=sys.stderr)
            return 1
        text = client.result_text(doc["id"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(text, end="")
    if args.report_out:
        atomic_write_text(args.report_out, text)
        print(f"report written to {args.report_out}")
    result = client.result(doc["id"])
    return 0 if result.get("success") else 1


def cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        docs = client.jobs(args.tenant)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not docs:
        print("no jobs")
        return 0
    for doc in docs:
        request = doc["request"]
        line = (f"{doc['id']}  {doc['state']:<9}  {request['tenant']:<12}  "
                f"{request['bug']}")
        if "latency_s" in doc:
            line += f"  {doc['latency_s']:.3f}s"
        if "error" in doc:
            line += f"  ({doc['error']})"
        print(line)
    return 0


def cmd_store(args) -> int:
    from repro.store import AttemptStore, verify_store

    if args.store_command == "verify":
        # Read-only on purpose: verifying must not create the store or
        # bump its epoch (it may belong to a running process).
        report = verify_store(args.store_dir)
        print(report.describe())
        return report.exit_code
    store = AttemptStore(args.store_dir)
    if args.store_command == "stats":
        print(store.stats().describe())
        return 0
    # gc
    report = store.gc(args.max_records)
    print(report.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pres",
        description="PRES: probabilistic replay with execution sketching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("bugs", help="list the evaluated bug suite")

    p_seed = sub.add_parser("find-seed", help="find a failing production run")
    p_seed.add_argument("bug")
    p_seed.add_argument("--budget", type=int, default=500)
    p_seed.add_argument("--ncpus", type=int, default=4)

    p_record = sub.add_parser("record", help="record one production run")
    _add_common(p_record)
    _add_epoch_flags(p_record)
    p_record.add_argument("--out", help="write the sketch log (JSON) here")
    p_record.add_argument("--journal",
                          help="journal sketch entries (crash-consistent) here")
    p_record.add_argument("--inject-fault", metavar="SPEC",
                          help="kill@K | truncate@N | garble@S | drop@S")

    p_analyze = sub.add_parser(
        "analyze", help="predict races/deadlocks from a saved sketch log"
    )
    p_analyze.add_argument("log", help="sketch log (binary, compressed, "
                                       "or JSON from `pres record --out`)")
    p_analyze.add_argument("--json", action="store_true",
                           help="print the replay plan as JSON instead of "
                                "the human report")
    p_analyze.add_argument("--out",
                           help="also write the replay plan (JSON) here")
    p_analyze.add_argument("--max-candidates", type=int, default=16,
                           help="cap on ranked plan candidates (default 16)")
    p_analyze.add_argument("--static", action="store_true",
                           help="analyze a BUG ID statically (no log, no "
                                "execution): walk the program's thread "
                                "bodies and print the StaticPlan")
    p_analyze.add_argument("--failure", metavar="TEXT",
                           help="with --static: a failure message from a "
                                "bug report; candidates are filtered to "
                                "the regions in its def-use slice")

    p_repro = sub.add_parser("reproduce", help="record and reproduce a bug")
    _add_common(p_repro)
    _add_epoch_flags(p_repro)
    p_repro.add_argument("--max-attempts", type=int, default=400)
    p_repro.add_argument("--plan", action="store_true",
                         help="run the predictive sanitizer over an RW "
                              "recording of the same run and seed its "
                              "plan into the first replay attempts")
    p_repro.add_argument("--static", action="store_true",
                         help="run the static analyzer over the program "
                              "source (filtered by the recorded failure) "
                              "and seed its candidates after any dynamic "
                              "plan seeds")
    p_repro.add_argument("--static-plan", metavar="FILE",
                         help="seed candidates from a saved StaticPlan "
                              "(JSON from `pres analyze BUG --static "
                              "--out FILE`) instead of re-analyzing")
    p_repro.add_argument("--jobs", type=int, default=1,
                         help="replay workers; >1 explores attempt batches "
                              "on a process pool (same result, less wall "
                              "time on multi-core hosts)")
    p_repro.add_argument("--batch-size", type=int, default=0,
                         help="frontier candidates dispatched per batch; "
                              "0 = auto.  The exploration schedule (and "
                              "every metrics counter) depends only on "
                              "this, never on --jobs")
    p_repro.add_argument("--no-feedback", action="store_true",
                         help="ablation: random re-rolls instead of feedback")
    p_repro.add_argument("--out", help="write the complete log (JSON) here")
    p_repro.add_argument("--report-out",
                         help="write the attempt report (text) here; "
                              "byte-identical to what `pres submit "
                              "--report-out` writes for the same request")
    p_repro.add_argument("--exec-out",
                         help="write the reproduced execution (JSONL) here")
    p_repro.add_argument("--trace-out",
                         help="write the session's observability trace "
                              "(Chrome trace_event JSON; open in Perfetto "
                              "or `pres inspect`) here")
    p_repro.add_argument("--metrics-out",
                         help="write the session's metrics snapshot "
                              "(JSON) here")
    p_repro.add_argument("--journal",
                         help="journal sketch entries (crash-consistent) here")
    p_repro.add_argument("--inject-fault", metavar="SPEC",
                         help="damage the journal before replay: "
                              "truncate@N | garble@S | drop@S (or kill@K)")
    p_repro.add_argument("--salvage", action="store_true",
                         help="reload the sketch from the (damaged) journal, "
                              "recovering the longest valid prefix")
    p_repro.add_argument("--degrade", action="store_true",
                         help="walk the sketch degradation ladder "
                              "(rw->bb->func->sys->sync) if replay fails")
    p_repro.add_argument("--store", metavar="DIR",
                         help="persist attempt outcomes to a cross-run "
                              "store at DIR and answer repeat attempts "
                              "from it (warm runs replay nothing live; "
                              "identical reported results)")
    p_repro.add_argument("--attempt-timeout", type=float, metavar="SECONDS",
                         help="per-attempt wall-clock deadline for pooled "
                              "workers; a hung attempt is abandoned and "
                              "retried (0/unset = no deadline)")
    p_repro.add_argument("--max-retries", type=int, metavar="N",
                         help="retries per attempt after a worker death "
                              "or timeout, with deterministic backoff "
                              "(default 2; exhaustion falls back to an "
                              "in-process replay of the same attempt)")
    p_repro.add_argument("--chaos", metavar="SPEC",
                         help="deterministically inject faults while "
                              "exploring: crash=P,hang=P,corrupt=P,seed=N "
                              "(rates in [0,1]; reported results stay "
                              "identical to the fault-free run)")
    p_repro.add_argument("--runs", metavar="DIR", default=".pres-runs",
                         help="directory for resumable run journals "
                              "(default: .pres-runs)")
    p_repro.add_argument("--run-id", metavar="ID",
                         help="journal every decided attempt under this "
                              "run id so a killed run can be resumed")
    p_repro.add_argument("--resume", metavar="ID",
                         help="resume a journaled run: replay its decided "
                              "attempts from the journal and explore only "
                              "the undecided rest (byte-identical report)")

    p_diag = sub.add_parser(
        "diagnose", help="reproduce a bug and print a root-cause report"
    )
    _add_common(p_diag)
    p_diag.add_argument("--max-attempts", type=int, default=400)

    p_replay = sub.add_parser("replay", help="replay a saved complete log")
    p_replay.add_argument("bug")
    p_replay.add_argument("--log", required=True)
    p_replay.add_argument("--salvage", action="store_true",
                          help="accept a (torn) trace journal: salvage and "
                               "replay its valid schedule prefix")

    p_doctor = sub.add_parser(
        "doctor", help="validate an on-disk log; salvage what it can"
    )
    p_doctor.add_argument("log", help="journal / trace / sketch / complete "
                                      "log, or an attempt-store directory")
    p_doctor.add_argument("--out",
                          help="where to write the salvaged log "
                               "(default: <log>.salvaged)")
    p_doctor.add_argument("--clean", action="store_true",
                          help="for store directories: remove stale temp "
                               "files left behind by a killed run")
    p_doctor.add_argument("--metrics-out",
                          help="write the diagnosis as a metrics snapshot "
                               "(JSON) here")

    p_stats = sub.add_parser(
        "stats", help="run once and print execution statistics + lock hazards"
    )
    p_stats.add_argument("bug")
    p_stats.add_argument("--seed", type=int, default=None)
    p_stats.add_argument("--ncpus", type=int, default=4)
    p_stats.add_argument("--sketch", default=None,
                         help="also report how many events this sketch "
                              "kind would record (none|sync|sys|func|bb|rw)")

    p_bench = sub.add_parser(
        "bench",
        help="render an evaluation table (t1, e1..e6, e12..e18, "
             "or 'list')",
    )
    p_bench.add_argument("experiment")
    p_bench.add_argument("--json", action="store_true",
                         help="also write BENCH_<experiment>.json "
                              "(machine-readable rows + records)")
    p_bench.add_argument("--json-dir", default=".",
                         help="directory for the JSON file (default: .)")
    p_bench.add_argument("--trace-out",
                         help="write the experiment's observability trace "
                              "(Chrome trace_event JSON) here")
    p_bench.add_argument("--metrics-out",
                         help="write the experiment's metrics snapshot "
                              "(JSON) here; also embedded in the --json "
                              "payload as meta.metrics")

    p_inspect = sub.add_parser(
        "inspect", help="render a saved observability trace as text"
    )
    p_inspect.add_argument("trace",
                           help="Chrome trace_event JSON written by "
                                "--trace-out")

    p_store = sub.add_parser(
        "store", help="inspect or bound a cross-run attempt store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    s_stats = store_sub.add_parser(
        "stats", help="record/shard/byte totals for one store"
    )
    s_stats.add_argument("store_dir", help="store directory "
                                           "(from reproduce --store)")
    s_verify = store_sub.add_parser(
        "verify", help="validate every shard; exit 1 on any damage"
    )
    s_verify.add_argument("store_dir", help="store directory")
    s_gc = store_sub.add_parser(
        "gc", help="evict oldest-recorded records down to a bound"
    )
    s_gc.add_argument("store_dir", help="store directory")
    s_gc.add_argument("--max-records", type=int, required=True,
                      help="records to keep (deterministic "
                           "oldest-recorded-first eviction)")

    p_serve = sub.add_parser(
        "serve",
        help="run the reproduction service (HTTP; see docs/service.md)",
    )
    p_serve.add_argument("--store", default=".pres-service",
                         help="store root; one attempt-store namespace "
                              "per tenant (default: .pres-service)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8979,
                         help="listen port; 0 picks an ephemeral one "
                              "(default: 8979)")
    p_serve.add_argument("--port-file",
                         help="write the bound port here once listening "
                              "(for wrappers using --port 0)")
    p_serve.add_argument("--slots", type=int, default=4,
                         help="concurrent job executions (default: 4)")
    p_serve.add_argument("--max-queued", type=int, default=256,
                         help="jobs waiting for a slot before admission "
                              "returns 429 (default: 256)")
    p_serve.add_argument("--tenant-slots", type=int, default=64,
                         help="per-tenant bound on unfinished jobs "
                              "(default: 64)")
    p_serve.add_argument("--pool-jobs", type=int, default=2,
                         help="width of the shared replay worker pool "
                              "lent to parallel explorations (default: 2)")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="default exploration jobs for requests that "
                              "leave jobs at 0 (default: 1)")

    p_submit = sub.add_parser(
        "submit", help="submit a reproduction job to a running service"
    )
    p_submit.add_argument("bug", help="bug id from `pres bugs`")
    p_submit.add_argument("--server", default="http://127.0.0.1:8979",
                          help="service base URL "
                               "(default: http://127.0.0.1:8979)")
    p_submit.add_argument("--tenant", default="default",
                          help="tenant namespace (default: default)")
    p_submit.add_argument("--sketch", default="sync",
                          help="none|sync|sys|func|bb|rw (default: sync)")
    p_submit.add_argument("--seed", type=int, default=None,
                          help="production-run seed (default: the server "
                               "searches for a failing one)")
    p_submit.add_argument("--max-attempts", type=int, default=400)
    p_submit.add_argument("--jobs", type=int, default=0,
                          help="exploration jobs; 0 = server default "
                               "(identical report either way)")
    p_submit.add_argument("--ncpus", type=int, default=4)
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes and print "
                               "its report")
    p_submit.add_argument("--report-out",
                          help="with --wait: write the report (text) "
                               "here; byte-identical to `pres reproduce "
                               "--report-out` for the same request")

    p_jobs = sub.add_parser(
        "jobs", help="list jobs on a running service"
    )
    p_jobs.add_argument("--server", default="http://127.0.0.1:8979",
                        help="service base URL "
                             "(default: http://127.0.0.1:8979)")
    p_jobs.add_argument("--tenant", default=None,
                        help="only this tenant's jobs")

    return parser


_HANDLERS = {
    "bugs": cmd_bugs,
    "find-seed": cmd_find_seed,
    "record": cmd_record,
    "analyze": cmd_analyze,
    "reproduce": cmd_reproduce,
    "diagnose": cmd_diagnose,
    "replay": cmd_replay,
    "doctor": cmd_doctor,
    "bench": cmd_bench,
    "stats": cmd_stats,
    "inspect": cmd_inspect,
    "store": cmd_store,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
}


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyboardInterrupt:
        # Commands that can report partial progress (reproduce) catch
        # the interrupt themselves; anything interrupted earlier or
        # later still exits 130 without a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except KeyError as exc:  # unknown bug id
        print(exc.args[0], file=sys.stderr)
        return 2
    except SimUsageError as exc:  # bad --run-id / --resume usage
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # bad --sketch / --inject-fault / --chaos spec
        print(exc, file=sys.stderr)
        return 2
    except SketchFormatError as exc:
        # A damaged artifact is an expected condition, not a crash: point
        # the user at the salvage path instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        print("hint: `pres doctor <log>` validates and salvages damaged logs",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
