"""E10 (extension) - cost-model sensitivity.

The virtual-time cost model is stated, not calibrated (DESIGN.md).  This
experiment shows the *qualitative* conclusions do not hinge on the chosen
constants: scaling the instrumentation prices from 0.25x to 4x moves
absolute overheads proportionally but leaves every shape intact — the
mechanism ordering, the RW >> SYNC gap, and the reduction factor's growth
with compute size.
"""

import pytest

from repro.apps import get_bug
from repro.bench import format_table
from repro.bench.overhead import overhead_row
from repro.core.cost import DEFAULT_COST_MODEL
from repro.core.sketches import SKETCH_ORDER, SketchKind

SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


@pytest.fixture(scope="module")
def sweep():
    spec = get_bug("mysql-atom-log")
    rows = {}
    for scale in SCALES:
        rows[scale] = overhead_row(
            spec,
            SKETCH_ORDER,
            seed=7,
            ncpus=4,
            cost_model=DEFAULT_COST_MODEL.scaled(scale),
        )
    return rows


def test_e10_sensitivity_table(sweep, publish, benchmark):
    def check():
        rendered = []
        for scale, row in sweep.items():
            rendered.append(
                [f"{scale}x"]
                + [row.overhead_percent[sketch] for sketch in SKETCH_ORDER]
                + [f"{row.reduction_vs_rw(SketchKind.SYNC):,.0f}x"]
            )
        return format_table(
            ["cost scale"] + [f"{k.value} %" for k in SKETCH_ORDER] + ["RW/SYNC"],
            rendered,
            title="E10: overhead vs cost-model scale (mysql-atom-log, 4 CPUs)",
        )

    table = benchmark.pedantic(check, rounds=1, iterations=1)
    publish("e10_cost_sensitivity", table)


def test_e10_ordering_invariant_under_scaling(sweep, benchmark):
    def check():
        for scale, row in sweep.items():
            overheads = [row.overhead_percent[sketch] for sketch in SKETCH_ORDER]
            assert all(
                a <= b + 1e-9 for a, b in zip(overheads, overheads[1:])
            ), (scale, overheads)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e10_gap_invariant_under_scaling(sweep, benchmark):
    def check():
        for scale, row in sweep.items():
            sync = row.overhead_percent[SketchKind.SYNC]
            rw = row.overhead_percent[SketchKind.RW]
            assert rw > 10 * max(sync, 1.0), (scale, sync, rw)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e10_overheads_scale_roughly_linearly(sweep, benchmark):
    def check():
        quarter = sweep[0.25].overhead_percent[SketchKind.RW]
        full = sweep[1.0].overhead_percent[SketchKind.RW]
        quadruple = sweep[4.0].overhead_percent[SketchKind.RW]
        assert quarter < full < quadruple
        # within a factor-2 band of proportionality
        assert 2.0 < full / quarter < 8.0
        assert 2.0 < quadruple / full < 8.0

    benchmark.pedantic(check, rounds=1, iterations=1)
