"""E14 - warm-start reproduction from a cross-run attempt store (extension).

The store's contract: a warm store only changes where outcomes come from
(disk folds instead of live replays), never what is explored.  Asserted
shape: warm runs answer every attempt from the store (zero live
replays), the warm hit count equals the cold run's attempt count, and
baseline / cold / warm / gc-partial reproductions report identical
attempt sequences, winners, and complete logs.
"""

import pytest

from repro.bench.warmstore import build_e14


@pytest.fixture(scope="module")
def result():
    return build_e14()


def test_e14_warm_store_table(result, publish, benchmark):
    def check():
        publish("e14_warm_store", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e14_reports_identical_across_store_states(result, benchmark):
    def check():
        assert result.meta["identical_reports"] is True
        for record in result.records:
            assert record["identical_reports"], record["bug"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e14_warm_run_replays_nothing_live(result, benchmark):
    def check():
        assert result.meta["zero_live_warm"] is True
        for record in result.records:
            assert record["warm_live_replays"] == 0, record["bug"]
            assert record["warm_cache_hits"] == record["attempts"], record["bug"]
            # A cold store answers nothing: every attempt ran live.
            assert record["cold_cache_hits"] == 0, record["bug"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e14_partial_store_only_replays_evicted_keys(result, benchmark):
    def check():
        for record in result.records:
            assert record["gc_evicted"] > 0, record["bug"]
            assert (
                record["partial_live_replays"] <= record["gc_evicted"]
            ), record["bug"]
            # Strictly fewer live replays than a cold run, even after gc.
            assert (
                record["partial_live_replays"] < record["attempts"]
            ), record["bug"]

    benchmark.pedantic(check, rounds=1, iterations=1)
