"""E12 - parallel exploration speedup (extension).

Attempts are pure functions of (sketch log, constraints, seed), so the
exploration engine can run them on a process pool without changing what
is explored.  The asserted shape is the part that must hold on *any*
host: every arm reports the identical attempt trajectory
(jobs-invariance), the cached re-walk answers from the attempt cache,
and sort-once constraint ordering beats per-attempt re-sorting.  Pool
wall-clock speedup needs spare host cores, so it is published (with
``host_cpus`` in the JSON meta) but not asserted — CI runners may have
a single core.
"""

import pytest

from repro.bench.speedup import e12_workload, run_speedup

CAP = 300


@pytest.fixture(scope="module")
def result():
    return run_speedup(jobs=(2, 4), max_attempts=CAP, recorded=e12_workload())


def test_e12_speedup_table(result, publish, benchmark):
    def check():
        publish("e12_parallel_speedup", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e12_workload_is_multi_hundred_attempts(result, benchmark):
    def check():
        assert result.records[0]["attempts"] >= 200

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e12_jobs_invariance(result, benchmark):
    def check():
        assert all(record["matches_serial"] for record in result.records)
        assert len({record["attempts"] for record in result.records}) == 1

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e12_cached_rewalk_hits_every_attempt(result, benchmark):
    def check():
        cached = next(
            record for record in result.records
            if record["label"] == "cached re-walk"
        )
        assert cached["cache_hits"] == cached["attempts"]
        assert cached["speedup"] > 10

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e12_sort_once_beats_per_attempt_sort(result, benchmark):
    def check():
        micro = result.meta["sort_microbench"]
        assert micro["speedup"] > 2

    benchmark.pedantic(check, rounds=1, iterations=1)
