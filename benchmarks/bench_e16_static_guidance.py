"""E16 - static guidance ablation (extension).

The static analyzer reads the guest program *source* — no recording, no
execution — predicts races / atomicity windows / lock-order cycles, and
seeds the ranked candidates into sketchless (NONE) exploration, where
they interleave with mined feedback.  The asserted shape: static
guidance never costs attempts on any suite bug (attempts 1 and 2 stay
the baseline's empty attempt and best mined flip by construction), it
strictly reduces attempts on at least three bugs, static-seeded
parallel exploration stays ``--jobs``-invariant at a fixed batch size,
and the analyzer is bytewise deterministic (two independent analyses
serialize to identical :class:`StaticPlan` JSON).
"""

import pytest

from repro.bench.static_guidance import build_e16

MIN_STRICT_WINS = 3


@pytest.fixture(scope="module")
def result():
    return build_e16()


def test_e16_static_guidance_table(result, publish, benchmark):
    def check():
        publish("e16_static_guidance", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e16_static_never_regresses_any_bug(result, benchmark):
    def check():
        assert result.meta["regressions"] == 0
        for record in result.records:
            assert record["static"]["success"] >= record["baseline"]["success"]
            if record["baseline"]["success"] and record["static"]["success"]:
                assert (
                    record["static"]["attempts"]
                    <= record["baseline"]["attempts"]
                )

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e16_static_strictly_improves_several_bugs(result, benchmark):
    def check():
        assert result.meta["wins"] >= MIN_STRICT_WINS
        improved = [r["bug"] for r in result.records if r["improved"]]
        assert len(improved) >= MIN_STRICT_WINS

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e16_static_seeded_exploration_is_jobs_invariant(result, benchmark):
    def check():
        assert result.meta["jobs_invariant"] is True

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e16_static_plan_serialization_is_deterministic(result, benchmark):
    def check():
        assert result.meta["plan_bytes_identical"] is True

    benchmark.pedantic(check, rounds=1, iterations=1)
