"""E15 - replay as a service: concurrent jobs over one warm engine.

Boots the real server on an ephemeral port and drives two ~100-job arms
(cold store, then warm) through its HTTP client.  Asserted shape: zero
failed jobs under concurrency, every job's report byte-identical to its
serial CLI reference, and a warm arm that answers its attempts from the
store the cold arm populated.  The table carries throughput and p50/p99
job latency; ``BENCH_e15.json`` (written by ``pres bench e15 --json``)
carries the same rows for the CI artifact.
"""

import pytest

from repro.bench.service import E15_JOBS, build_e15


@pytest.fixture(scope="module")
def result():
    return build_e15()


def test_e15_service_table(result, publish, benchmark):
    def check():
        publish("e15_service", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e15_no_failed_jobs_under_concurrency(result, benchmark):
    def check():
        assert result.meta["zero_failed"] is True
        for record in result.records:
            assert record["jobs"] == E15_JOBS, record["arm"]
            assert record["failed"] == 0, record["arm"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e15_reports_byte_identical_to_serial_cli(result, benchmark):
    def check():
        assert result.meta["identical_reports"] is True
        for record in result.records:
            assert record["mismatched"] == 0, record["arm"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e15_warm_arm_folds_from_the_shared_store(result, benchmark):
    def check():
        arms = {record["arm"]: record for record in result.records}
        # The cold arm populates the store mid-flight, so later cold
        # jobs may already hit; the warm arm must out-hit it decisively.
        assert arms["warm"]["store_hits"] > arms["cold"]["store_hits"]
        counters = result.meta["service_counters"]
        assert counters.get("service.done", 0) == 2 * E15_JOBS

    benchmark.pedantic(check, rounds=1, iterations=1)
