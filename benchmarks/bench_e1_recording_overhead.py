"""E1 - production-run recording overhead per sketch per application.

Paper claim: PRES "significantly lowered the production-run recording
overhead of previous approaches"; with synchronization or system-call
sketching the overhead is small, while the full shared-access order (our
RW mechanism, standing in for classical software deterministic replay) is
orders of magnitude more expensive.  The expected shape is a monotone
spectrum: NONE <= SYNC <= SYS <= FUNC <= BB << RW.
"""

import pytest

from repro.apps import all_bugs, get_bug
from repro.bench import format_table
from repro.bench.overhead import overhead_matrix
from repro.core.sketches import SKETCH_ORDER, SketchKind


@pytest.fixture(scope="module")
def matrix():
    return overhead_matrix(all_bugs(), SKETCH_ORDER, seed=7, ncpus=4)


def test_e1_overhead_table(matrix, publish, benchmark):
    def check():
        rows = [
            [row.bug_id]
            + [row.overhead_percent[sketch] for sketch in SKETCH_ORDER]
            for row in matrix
        ]
        table = format_table(
            ["bug"] + [f"{k.value} %" for k in SKETCH_ORDER],
            rows,
            title="E1: recording overhead (% slowdown) per sketch, 4 CPUs",
        )
        publish("e1_recording_overhead", table)

        for row in matrix:
            overheads = [row.overhead_percent[sketch] for sketch in SKETCH_ORDER]
            # the spectrum is monotone in information content
            assert all(a <= b + 1e-9 for a, b in zip(overheads, overheads[1:])), (
                row.bug_id,
                overheads,
            )
            # RW (classical replay) is at least 10x SYNC everywhere
            sync = row.overhead_percent[SketchKind.SYNC]
            rw = row.overhead_percent[SketchKind.RW]
            assert rw > 10 * max(sync, 1.0), (row.bug_id, sync, rw)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e1_sync_stays_cheap(matrix, benchmark):
    def check():
        # "with synchronization or system call sketching": every app records
        # for under 100% overhead, most far less.
        sync_overheads = [row.overhead_percent[SketchKind.SYNC] for row in matrix]
        assert max(sync_overheads) < 100.0
        assert sum(1 for o in sync_overheads if o < 40.0) >= len(matrix) // 2

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e1_recording_speed(benchmark):
    """Timed portion: one recorded run of the largest server app."""
    from repro.core.recorder import record
    from repro.sim import MachineConfig

    spec = get_bug("mysql-atom-log")
    program = spec.make_program()

    def record_once():
        return record(program, SketchKind.SYNC, seed=7,
                      config=MachineConfig(ncpus=4))

    recorded = benchmark.pedantic(record_once, rounds=3, iterations=1)
    assert recorded.stats.total_events > 0
