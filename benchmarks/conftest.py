"""Shared benchmark plumbing.

Every experiment writes its rendered table to ``benchmarks/results/`` so
EXPERIMENTS.md can quote the exact artifacts, and prints it (visible with
``pytest -s`` or on failure).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir):
    """publish(experiment_id, text): print and persist a result table."""

    def _publish(experiment_id: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{experiment_id}.txt").write_text(text + "\n",
                                                          encoding="utf-8")

    return _publish
