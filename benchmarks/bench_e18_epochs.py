"""E18 - epoch-windowed always-on recording vs full history (extension).

The rolling window's contract, asserted over the T1 suite: the retained
(windowed) log is strictly smaller than full history on the long-running
server bugs, last-epoch in-situ replay reproduces every bug in no more
attempts than the full-history search of the same production run, and
the windowed reports are byte-identical across ``--jobs`` arms and
across window sizes K and K+1 on the server bugs.
"""

import pytest

from repro.bench.epochs import E18_SERVER_BUGS, build_e18


@pytest.fixture(scope="module")
def result():
    return build_e18()


def test_e18_epoch_table(result, publish, benchmark):
    def check():
        publish("e18_epochs", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e18_windowed_log_strictly_smaller_on_servers(result, benchmark):
    def check():
        for record in result.records:
            if record["bug"] in E18_SERVER_BUGS:
                assert (
                    record["windowed_bytes"] < record["full_bytes"]
                ), record["bug"]
                assert record["truncated_entries"] > 0, record["bug"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e18_attempts_no_worse_than_full_history(result, benchmark):
    def check():
        for record in result.records:
            assert record["windowed_success"], record["bug"]
            if record["full_success"]:
                assert (
                    record["windowed_attempts"] <= record["full_attempts"]
                ), record["bug"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e18_reports_deterministic_across_jobs_and_windows(result, benchmark):
    def check():
        asserted = 0
        for record in result.records:
            if record["bug"] in E18_SERVER_BUGS:
                assert record["jobs_identical"] is True, record["bug"]
                assert record["window_identical"] is True, record["bug"]
                asserted += 1
        assert asserted == len(E18_SERVER_BUGS)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e18_every_bug_has_a_multi_epoch_timeline(result, benchmark):
    def check():
        for record in result.records:
            assert record["total_epochs"] >= 2, record["bug"]
            assert record["reproduced_from"], record["bug"]

    benchmark.pedantic(check, rounds=1, iterations=1)
