"""E17 - report equivalence under injected faults (extension).

The supervisor's contract: retries, inline fallbacks, pool rebuilds, and
store corruption recovery change where an attempt's outcome is computed,
never what it is.  Asserted shape: under a fixed-seed chaos mix (10%
combined crash+hang attempt rate plus store-shard corruption) every
suite bug's reproduction reports a signature byte-identical to its
fault-free run, and the harness actually injected faults (the arm is
not vacuously fault-free).
"""

import pytest

from repro.bench.faults import build_e17


@pytest.fixture(scope="module")
def result():
    return build_e17()


def test_e17_faults_table(result, publish, benchmark):
    def check():
        publish("e17_faults", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e17_reports_identical_under_chaos(result, benchmark):
    def check():
        assert result.meta["identical_reports"] is True
        for record in result.records:
            assert record["identical_reports"], record["bug"]
            assert record["signature_baseline"] == record["signature_chaos"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e17_chaos_arm_actually_injected_faults(result, benchmark):
    def check():
        assert result.meta["faults_injected"] > 0
        total_retries = sum(
            record["supervise"]["supervise.retries"]
            for record in result.records
        )
        assert total_retries > 0

    benchmark.pedantic(check, rounds=1, iterations=1)
