"""T1 - the evaluated applications and bugs (paper Table 1).

Regenerates the suite inventory: 11 applications (4 servers, 3
desktop/client, 4 scientific/graphics), 13 bugs with their types, plus two
columns the paper's table implies but our substrate makes explicit: the
bug's manifestation rate under unconstrained scheduling and one verified
failing production seed.
"""

import pytest

from repro.apps import all_bugs
from repro.bench import failure_rate, find_failing_seed, format_table


@pytest.fixture(scope="module")
def suite_rows():
    rows = []
    for spec in all_bugs():
        seed = find_failing_seed(spec)
        rate = failure_rate(spec, samples=100)
        rows.append(
            [
                spec.bug_id,
                spec.app,
                spec.category,
                spec.bug_type + (" (multi-var)" if spec.multi_variable else ""),
                f"{rate * 100:.0f}%",
                seed if seed is not None else "none",
            ]
        )
    return rows


def test_t1_suite_shape(suite_rows, publish, benchmark):
    def check():
        table = format_table(
            ["bug", "app", "category", "type", "fail rate", "failing seed"],
            suite_rows,
            title="T1: applications and bugs (11 apps, 13 bugs)",
        )
        publish("t1_bug_suite", table)
        assert len(suite_rows) == 13
        assert len({row[1] for row in suite_rows}) == 11
        assert all(row[5] != "none" for row in suite_rows), "every bug must manifest"

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_t1_seed_search_speed(benchmark):
    """Timed portion: how long finding a failing run takes for one app."""
    from repro.bench.seeds import _run_fails
    from repro.apps import get_bug

    spec = get_bug("fft-order-sync")

    def search():
        for seed in range(60):
            if _run_fails(spec, seed, ncpus=4):
                return seed
        return None

    found = benchmark.pedantic(search, rounds=1, iterations=1)
    assert found is not None
