"""E7 - reproduce-every-time.

Paper claim: "after a bug is reproduced once, PRES can reproduce it every
time."  For every bug: reproduce once probabilistically, save the
complete log, then replay it repeatedly - each replay must re-trigger the
same failure with the identical schedule.
"""

import pytest

from repro.apps import all_bugs, get_bug
from repro.bench import format_table
from repro.bench.attempts import reproduce_once
from repro.bench.seeds import find_failing_seed
from repro.core.full_replay import replay_complete
from repro.core.sketches import SketchKind

REPLAYS = 5


@pytest.fixture(scope="module")
def complete_logs():
    logs = {}
    for spec in all_bugs():
        report = reproduce_once(spec, SketchKind.SYNC, max_attempts=400)
        assert report.success, spec.bug_id
        logs[spec.bug_id] = report.complete_log
    return logs


def test_e7_every_bug_replays_deterministically(complete_logs, publish, benchmark):
    def check():
        rows = []
        for spec in all_bugs():
            log = complete_logs[spec.bug_id]
            program = spec.make_program()
            signatures = set()
            schedules = set()
            for _ in range(REPLAYS):
                trace = replay_complete(program, log, oracle=spec.oracle)
                assert trace.failure is not None, spec.bug_id
                signatures.add(trace.failure.signature())
                schedules.add(tuple(trace.schedule))
            assert len(signatures) == 1, spec.bug_id
            assert len(schedules) == 1, spec.bug_id
            assert signatures.pop() == log.failure_signature
            rows.append([spec.bug_id, REPLAYS, f"{REPLAYS}/{REPLAYS}", len(log.schedule)])
        table = format_table(
            ["bug", "replays", "reproduced", "log steps"],
            rows,
            title="E7: deterministic replay from the complete log",
        )
        publish("e7_determinism", table)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e7_complete_log_survives_serialization(complete_logs, benchmark):
    def check():
        from repro.core.full_replay import CompleteLog

        spec = get_bug("openldap-deadlock")
        log = complete_logs[spec.bug_id]
        restored = CompleteLog.from_json(log.to_json())
        trace = replay_complete(spec.make_program(), restored, oracle=spec.oracle)
        assert trace.failure is not None
        assert trace.failure.signature() == log.failure_signature

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e7_replay_speed(benchmark, complete_logs):
    """Timed portion: one deterministic replay (the developer's iteration
    loop once the bug is captured)."""
    spec = get_bug("mysql-atom-log")
    log = complete_logs[spec.bug_id]
    program = spec.make_program()

    def replay_once():
        return replay_complete(program, log, oracle=spec.oracle)

    trace = benchmark.pedantic(replay_once, rounds=5, iterations=1)
    assert trace.failure is not None
