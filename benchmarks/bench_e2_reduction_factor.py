"""E2 - overhead reduction vs full-order recording ("by up to 4416 times").

The paper's headline factor comes from its most favorable application: a
compute-heavy program with almost no synchronization, where recording
every shared access is ruinous but the sync sketch is nearly free.  We
reproduce the *shape* by sweeping the scientific kernels up in size (sync
counts stay constant while shared-access counts grow), reporting the
reduction factor overhead(RW)/overhead(SYNC) per configuration and the
suite-wide maximum.  Absolute factors depend on the cost model; what must
hold is factors in the hundreds-to-thousands, growing with compute size.
"""

import pytest

from repro.apps import all_bugs, get_bug
from repro.bench import format_table
from repro.bench.overhead import max_reduction, overhead_matrix, overhead_row
from repro.core.sketches import SketchKind

SKETCHES = (SketchKind.SYNC, SketchKind.SYS, SketchKind.RW)

#: scaled-up scientific configurations: (bug, params) from small to large
SWEEP = [
    ("fft-order-sync", {"workers": 4, "seg": 8}),
    ("fft-order-sync", {"workers": 4, "seg": 24}),
    ("fft-order-sync", {"workers": 4, "seg": 48}),
    ("fft-order-sync", {"workers": 4, "seg": 96}),
    ("lu-atom-diag", {"workers": 4, "cells": 8, "steps": 3}),
    ("lu-atom-diag", {"workers": 4, "cells": 24, "steps": 3}),
    ("radix-order-rank", {"workers": 4, "seg": 32}),
]


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for bug_id, params in SWEEP:
        spec = get_bug(bug_id)
        row = overhead_row(spec, SKETCHES, seed=3, ncpus=4, **params)
        rows.append((bug_id, params, row))
    return rows


def test_e2_reduction_sweep(sweep_rows, publish, benchmark):
    def check():
        rendered = []
        for bug_id, params, row in sweep_rows:
            rendered.append(
                [
                    f"{bug_id} {params}",
                    row.overhead_percent[SketchKind.SYNC],
                    row.overhead_percent[SketchKind.RW],
                    f"{row.reduction_vs_rw(SketchKind.SYNC):,.0f}x",
                ]
            )
        headline = max(
            row.reduction_vs_rw(SketchKind.SYNC)
            for _, _, row in sweep_rows
            if row.overhead_percent[SketchKind.SYNC] > 0
        )
        table = format_table(
            ["configuration", "sync %", "rw %", "reduction"],
            rendered,
            title=(
                "E2: overhead reduction, SYNC sketch vs full-order recording "
                f"(suite max: {headline:,.0f}x; paper: up to 4416x)"
            ),
        )
        publish("e2_reduction_factor", table)
        # the headline factor must reach the hundreds-to-thousands band
        assert headline > 300, headline

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e2_reduction_grows_with_compute_size(sweep_rows, benchmark):
    def check():
        fft_rows = [
            row for bug_id, params, row in sweep_rows if bug_id == "fft-order-sync"
        ]
        factors = [row.reduction_vs_rw(SketchKind.SYNC) for row in fft_rows]
        assert factors == sorted(factors), factors

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e2_default_suite_reduction(publish, benchmark):
    def check():
        rows = overhead_matrix(all_bugs(), SKETCHES, seed=7, ncpus=4)
        factor = max_reduction(rows, SketchKind.SYNC)
        publish(
            "e2_default_suite",
            f"E2 (default-size suite): max reduction SYNC vs RW = {factor:,.0f}x",
        )
        assert factor > 50

    benchmark.pedantic(check, rounds=1, iterations=1)
