"""E11 (extension) - workload-scale sensitivity of reproduction.

The E3 attempt counts are measured at one workload size per app.  A fair
question is whether sketch-guided reproduction only works at that size —
e.g. whether more concurrent clients or longer runs blow up the search.
This experiment re-runs the reproduction pipeline on one server, one
desktop and one scientific bug at three workload scales each, asserting
the qualitative result (reproduced within budget; RW still first-attempt)
at every scale.
"""

import pytest

from repro.apps import get_bug
from repro.bench import format_table
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

CAP = 400

#: (bug, scale label, build overrides)
SCALES = [
    ("mysql-atom-log", "small", {"workers": 3, "queries": 4}),
    ("mysql-atom-log", "default", {}),
    ("mysql-atom-log", "large", {"workers": 6, "queries": 9}),
    ("pbzip2-order-free", "small", {"blocks": 4, "consumers": 2}),
    ("pbzip2-order-free", "default", {}),
    ("pbzip2-order-free", "large", {"blocks": 12, "consumers": 3}),
    ("lu-atom-diag", "small", {"workers": 2, "cells": 2, "steps": 2}),
    ("lu-atom-diag", "default", {}),
    ("lu-atom-diag", "large", {"workers": 5, "cells": 5, "steps": 3}),
]


def _cell(spec, sketch, params):
    seed = find_failing_seed(spec, **params)
    if seed is None:
        return None
    recorded = record(
        spec.make_program(**params),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )
    report = reproduce(recorded, ExplorerConfig(max_attempts=CAP))
    return report


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for bug_id, label, params in SCALES:
        spec = get_bug(bug_id)
        sync_report = _cell(spec, SketchKind.SYNC, params)
        rw_report = _cell(spec, SketchKind.RW, params)
        rows.append((bug_id, label, params, sync_report, rw_report))
    return rows


def test_e11_workload_table(sweep, publish, benchmark):
    def check():
        rendered = []
        for bug_id, label, params, sync_report, rw_report in sweep:
            rendered.append(
                [
                    f"{bug_id}/{label}",
                    sync_report.attempts if sync_report and sync_report.success
                    else f">{CAP}",
                    rw_report.attempts if rw_report and rw_report.success
                    else f">{CAP}",
                    sync_report.total_replay_steps if sync_report else "-",
                ]
            )
        return format_table(
            ["bug/scale", "sync attempts", "rw attempts", "sync replay steps"],
            rendered,
            title="E11: reproduction across workload scales (cap 400)",
        )

    table = benchmark.pedantic(check, rounds=1, iterations=1)
    publish("e11_workload_sensitivity", table)


def test_e11_every_scale_reproduces(sweep, benchmark):
    def check():
        for bug_id, label, params, sync_report, rw_report in sweep:
            assert sync_report is not None, (bug_id, label, "no failing seed")
            assert sync_report.success, (bug_id, label, "SYNC failed")
            assert rw_report.success, (bug_id, label, "RW failed")

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e11_rw_first_attempt_at_every_scale(sweep, benchmark):
    def check():
        for bug_id, label, params, _, rw_report in sweep:
            assert rw_report.attempts == 1, (bug_id, label)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e11_attempts_stay_bounded_as_workload_grows(sweep, benchmark):
    def check():
        by_bug = {}
        for bug_id, label, params, sync_report, _ in sweep:
            by_bug.setdefault(bug_id, {})[label] = sync_report.attempts
        for bug_id, scales in by_bug.items():
            # growing the workload must not blow the search up by more
            # than an order of magnitude over the small configuration
            assert scales["large"] <= max(10 * scales["small"], 60), (
                bug_id,
                scales,
            )

    benchmark.pedantic(check, rounds=1, iterations=1)
