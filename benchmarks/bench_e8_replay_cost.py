"""E8 - diagnosis-time replay cost.

The flip side of cheap recording is work moved to diagnosis time, where
the paper argues it belongs ("when performance is less critical").  This
experiment quantifies that trade: total replay steps executed and
distinct schedules explored per reproduction, per sketch.  Expected
shape: richer sketches spend less diagnosis work; the total stays within
an interactive budget for every mechanism.
"""

import pytest

from repro.apps import all_bugs
from repro.bench import format_table
from repro.bench.attempts import reproduce_once
from repro.core.sketches import SketchKind

SKETCHES = (SketchKind.NONE, SketchKind.SYNC, SketchKind.SYS, SketchKind.RW)


@pytest.fixture(scope="module")
def reports():
    table = {}
    for spec in all_bugs():
        table[spec.bug_id] = {
            sketch: reproduce_once(spec, sketch, max_attempts=400)
            for sketch in SKETCHES
        }
    return table


def test_e8_replay_cost_table(reports, publish, benchmark):
    def check():
        rows = []
        for bug_id, by_sketch in reports.items():
            row = [bug_id]
            for sketch in SKETCHES:
                report = by_sketch[sketch]
                row.append(f"{report.attempts}/{report.total_replay_steps}")
            rows.append(row)
        table = format_table(
            ["bug"] + [f"{k.value} (att/steps)" for k in SKETCHES],
            rows,
            title="E8: diagnosis cost - attempts and total replay steps",
        )
        publish("e8_replay_cost", table)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e8_all_reproductions_succeed(reports, benchmark):
    def check():
        for bug_id, by_sketch in reports.items():
            for sketch, report in by_sketch.items():
                assert report.success, (bug_id, sketch)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e8_diagnosis_cost_stays_interactive(reports, benchmark):
    def check():
        # No reproduction may need more than ~200k simulated replay steps
        # (seconds of wall time) - diagnosis work is bounded.
        for bug_id, by_sketch in reports.items():
            for sketch, report in by_sketch.items():
                assert report.total_replay_steps < 200_000, (bug_id, sketch)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e8_rw_spends_least_diagnosis_work(reports, benchmark):
    def check():
        # Full-order recording buys a one-attempt replay everywhere, so its
        # diagnosis cost is the per-bug floor.
        for bug_id, by_sketch in reports.items():
            rw_steps = by_sketch[SketchKind.RW].total_replay_steps
            for sketch in (SketchKind.NONE, SketchKind.SYNC, SketchKind.SYS):
                assert rw_steps <= by_sketch[sketch].total_replay_steps * 1.05 + 50, (
                    bug_id,
                    sketch,
                )

    benchmark.pedantic(check, rounds=1, iterations=1)
