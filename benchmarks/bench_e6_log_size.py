"""E6 - sketch log sizes.

The paper reports tiny logs for SYNC/SYS sketching and large ones for
full-order recording; log size is the second face of recording cost
(production machines must also *store* the sketch).  Expected shape:
bytes grow monotonically across the spectrum, and SYNC logs are at least
an order of magnitude smaller than RW logs on every app.
"""

import pytest

from repro.apps import all_bugs
from repro.bench import format_table
from repro.bench.overhead import overhead_matrix
from repro.core.sketches import SKETCH_ORDER, SketchKind


@pytest.fixture(scope="module")
def matrix():
    return overhead_matrix(all_bugs(), SKETCH_ORDER, seed=7, ncpus=4)


def test_e6_log_size_table(matrix, publish, benchmark):
    def check():
        rows = [
            [row.bug_id, row.total_events]
            + [row.log_bytes[sketch] for sketch in SKETCH_ORDER]
            for row in matrix
        ]
        table = format_table(
            ["bug", "events"] + [f"{k.value} B" for k in SKETCH_ORDER],
            rows,
            title="E6: sketch log size (bytes) per mechanism",
        )
        publish("e6_log_size", table)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e6_sizes_monotone_in_information(matrix, benchmark):
    def check():
        for row in matrix:
            entries = [row.entries[sketch] for sketch in SKETCH_ORDER]
            assert entries == sorted(entries), (row.bug_id, entries)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e6_sync_logs_are_small(matrix, benchmark):
    def check():
        # Every app's SYNC log is at least 2x smaller than its RW log;
        # for most apps (everything but the lock-dominated deadlock
        # server) the gap is 4x or more.
        big_gap = 0
        for row in matrix:
            sync_bytes = row.log_bytes[SketchKind.SYNC]
            rw_bytes = row.log_bytes[SketchKind.RW]
            assert sync_bytes * 2 <= rw_bytes, (row.bug_id, sync_bytes, rw_bytes)
            if sync_bytes * 4 <= rw_bytes:
                big_gap += 1
        assert big_gap >= len(matrix) // 2, big_gap

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e6_entry_density(matrix, publish, benchmark):
    def check():
        lines = ["E6b: log entries per 1000 executed operations"]
        for row in matrix:
            sync_density = 1000.0 * row.entries[SketchKind.SYNC] / row.total_events
            rw_density = 1000.0 * row.entries[SketchKind.RW] / row.total_events
            lines.append(
                f"  {row.bug_id:24s} sync {sync_density:7.1f}   rw {rw_density:7.1f}"
            )
            assert sync_density < rw_density
        publish("e6_entry_density", "\n".join(lines))

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e6_serialization_speed(benchmark):
    """Timed portion: binary round trip of a large RW log."""
    from repro.apps import get_bug
    from repro.core.recorder import record
    from repro.core.sketchlog import SketchLog

    recorded = record(
        get_bug("fft-order-sync").make_program(workers=4, seg=24),
        SketchKind.RW,
        seed=3,
    )

    def round_trip():
        return SketchLog.from_bytes(recorded.log.to_bytes())

    restored = benchmark.pedantic(round_trip, rounds=5, iterations=1)
    assert restored.entries == recorded.log.entries
