"""E13 - predictive sanitizer ablation (extension).

The sanitizer reads a rich (RW) recording, predicts races / atomicity
windows / lock-order cycles statically, and seeds the ranked plan into
the first replay attempts of the *SYNC projection* of the same run.  The
asserted shape: the plan never costs attempts on any suite bug (attempt
1 stays the unplanned baseline attempt by construction), it strictly
reduces attempts on at least three bugs, and plan-seeded parallel
exploration stays ``--jobs``-invariant at a fixed batch size.
"""

import pytest

from repro.bench.prediction import build_e13

MIN_STRICT_WINS = 3


@pytest.fixture(scope="module")
def result():
    return build_e13()


def test_e13_prediction_table(result, publish, benchmark):
    def check():
        publish("e13_prediction_ablation", result.render())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e13_plan_never_regresses_any_bug(result, benchmark):
    def check():
        assert result.meta["regressions"] == 0
        for record in result.records:
            assert record["planned"]["success"] >= record["baseline"]["success"]
            if record["baseline"]["success"] and record["planned"]["success"]:
                assert (
                    record["planned"]["attempts"]
                    <= record["baseline"]["attempts"]
                )

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e13_plan_strictly_improves_several_bugs(result, benchmark):
    def check():
        assert result.meta["wins"] >= MIN_STRICT_WINS
        improved = [r["bug"] for r in result.records if r["improved"]]
        assert len(improved) >= MIN_STRICT_WINS

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e13_plan_seeded_exploration_is_jobs_invariant(result, benchmark):
    def check():
        assert result.meta["jobs_invariant"] is True

    benchmark.pedantic(check, rounds=1, iterations=1)
