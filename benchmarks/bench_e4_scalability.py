"""E4 - recording overhead vs number of processors.

Paper claim: "PRES scaled well with the number of processors".  Following
the paper's methodology, the application runs with as many workers as
processors at each point.  Expected shape: SYNC/SYS curves stay nearly
flat (their log appends piggyback on operations that already serialize),
while RW (full-order recording) degrades steeply because it manufactures
serialization between naturally parallel memory accesses.
"""

import pytest

from repro.apps import get_bug
from repro.bench import format_table
from repro.bench.scaling import scaling_curves
from repro.core.sketches import SketchKind

CPUS = (2, 4, 8, 16)
SKETCHES = (SketchKind.SYNC, SketchKind.SYS, SketchKind.RW)


def _fft_for(ncpus):
    return get_bug("fft-order-sync").make_program(workers=ncpus, seg=6)


def _mysql_for(ncpus):
    return get_bug("mysql-atom-log").make_program(workers=ncpus, queries=4)


@pytest.fixture(scope="module")
def curves():
    fft = scaling_curves(get_bug("fft-order-sync"), _fft_for, SKETCHES, CPUS)
    mysql = scaling_curves(get_bug("mysql-atom-log"), _mysql_for, SKETCHES, CPUS)
    return {"fft": fft, "mysql": mysql}


def test_e4_scaling_figure(curves, publish, benchmark):
    def check():
        rows = []
        for app, app_curves in curves.items():
            for curve in app_curves:
                rows.append(
                    [f"{app}/{curve.sketch.value}"]
                    + [f"{p.overhead_percent:.1f}" for p in curve.points]
                )
        table = format_table(
            ["app/sketch"] + [f"{n} cpus %" for n in CPUS],
            rows,
            title="E4: recording overhead vs processors (workers = ncpus)",
        )
        publish("e4_scalability", table)

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("app", ["fft", "mysql"])
def test_e4_sync_scales_rw_does_not(curves, app, benchmark):
    def check():
        by_sketch = {c.sketch: c for c in curves[app]}
        sync = by_sketch[SketchKind.SYNC]
        rw = by_sketch[SketchKind.RW]
        # RW's absolute overhead dwarfs SYNC's at every point ...
        for sync_point, rw_point in zip(sync.points, rw.points):
            assert rw_point.overhead_percent > 8 * max(sync_point.overhead_percent, 1.0)
        # ... and RW at 16 CPUs is several times its own 2-CPU overhead,
        # while SYNC stays within a small constant factor.
        assert rw.growth > 2.5, rw.overheads()
        assert sync.points[-1].overhead_percent < 120, sync.overheads()

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e4_measurement_speed(benchmark):
    """Timed portion: one 16-CPU recorded run."""
    from repro.core.recorder import record
    from repro.sim import MachineConfig

    def record_once():
        return record(_fft_for(16), SketchKind.RW, seed=3,
                      config=MachineConfig(ncpus=16))

    recorded = benchmark.pedantic(record_once, rounds=3, iterations=1)
    assert recorded.stats.overhead_percent > 0
