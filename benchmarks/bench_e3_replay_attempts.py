"""E3 - replay attempts needed to reproduce each bug, per sketch.

Paper claim: "PRES (with synchronization or system call sketching) ...
still reproduc[es] most tested bugs in fewer than 10 replay attempts",
and full-order recording reproduces on the first attempt by construction.
"""

import pytest

from repro.apps import all_bugs
from repro.bench import format_table
from repro.bench.attempts import attempts_matrix
from repro.core.sketches import SKETCH_ORDER, SketchKind


@pytest.fixture(scope="module")
def matrix():
    return attempts_matrix(all_bugs(), SKETCH_ORDER, max_attempts=400, ncpus=4)


def test_e3_attempts_table(matrix, publish, benchmark):
    def check():
        rows = [
            [row.bug_id, row.bug_type, row.seed]
            + [row.cells[sketch].render() for sketch in SKETCH_ORDER]
            for row in matrix
        ]
        table = format_table(
            ["bug", "type", "seed"] + [k.value for k in SKETCH_ORDER],
            rows,
            title="E3: replay attempts to reproduce (cap 400; '>N' = not reproduced)",
        )
        publish("e3_replay_attempts", table)
        # every bug reproduces under every mechanism within the cap
        for row in matrix:
            for sketch in SKETCH_ORDER:
                assert row.cells[sketch].success, (row.bug_id, sketch)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e3_rw_reproduces_first_attempt(matrix, benchmark):
    def check():
        for row in matrix:
            assert row.cells[SketchKind.RW].attempts == 1, row.bug_id

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e3_most_bugs_under_ten_with_sync_or_sys(matrix, benchmark):
    def check():
        under_ten = sum(
            1
            for row in matrix
            if min(
                row.cells[SketchKind.SYNC].attempts,
                row.cells[SketchKind.SYS].attempts,
            )
            < 10
        )
        assert under_ten > len(matrix) // 2, f"only {under_ten}/{len(matrix)}"

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e3_reproduction_speed(benchmark):
    """Timed portion: one full reproduction session (SYNC sketch)."""
    from repro.apps import get_bug
    from repro.bench.attempts import reproduce_once

    def session():
        return reproduce_once(get_bug("pbzip2-order-free"), SketchKind.SYNC)

    report = benchmark.pedantic(session, rounds=3, iterations=1)
    assert report.success
