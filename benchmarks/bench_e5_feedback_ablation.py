"""E5 - the feedback-generation ablation.

Paper claim: "PRES's feedback generation from unsuccessful replays is
critical in bug reproduction."  Both arms enforce the same SYNC sketch;
the ablated arm simply re-rolls the unrecorded scheduling choices with a
fresh seed each attempt instead of mining failed attempts for race flips.
The expected shape: feedback reproduces every bug, never does worse in
aggregate, and on the hard bugs (rare manifestations) the ablated arm
needs many times more attempts or exhausts its budget.
"""

import pytest

from repro.apps import all_bugs
from repro.bench import format_table
from repro.bench.attempts import attempts_matrix
from repro.core.sketches import SketchKind

CAP = 400


@pytest.fixture(scope="module")
def arms():
    with_feedback = attempts_matrix(
        all_bugs(), (SketchKind.SYNC,), max_attempts=CAP, use_feedback=True
    )
    without_feedback = attempts_matrix(
        all_bugs(), (SketchKind.SYNC,), max_attempts=CAP, use_feedback=False
    )
    return with_feedback, without_feedback


def test_e5_ablation_table(arms, publish, benchmark):
    def check():
        with_fb, without_fb = arms
        rows = []
        for fb_row, nofb_row in zip(with_fb, without_fb):
            fb = fb_row.cells[SketchKind.SYNC]
            nofb = nofb_row.cells[SketchKind.SYNC]
            ratio = (nofb.attempts / fb.attempts) if fb.success else float("inf")
            rows.append(
                [
                    fb_row.bug_id,
                    fb.render(),
                    nofb.render(),
                    f"{ratio:.1f}x" if nofb.success else f">{ratio:.1f}x",
                ]
            )
        table = format_table(
            ["bug", "feedback", "no feedback", "ratio"],
            rows,
            title=f"E5: attempts with vs without feedback (SYNC sketch, cap {CAP})",
        )
        publish("e5_feedback_ablation", table)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e5_feedback_reproduces_everything(arms, benchmark):
    def check():
        with_fb, _ = arms
        for row in with_fb:
            assert row.cells[SketchKind.SYNC].success, row.bug_id

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e5_feedback_wins_in_aggregate(arms, benchmark):
    def check():
        with_fb, without_fb = arms
        fb_total = sum(r.cells[SketchKind.SYNC].attempts for r in with_fb)
        nofb_total = sum(r.cells[SketchKind.SYNC].attempts for r in without_fb)
        assert fb_total < nofb_total, (fb_total, nofb_total)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e5_feedback_critical_on_hard_bugs(arms, benchmark):
    def check():
        # On at least a few bugs the ablated arm needs >=3x the attempts (or
        # fails outright) - the "critical" part of the claim.
        with_fb, without_fb = arms
        much_worse = 0
        for fb_row, nofb_row in zip(with_fb, without_fb):
            fb = fb_row.cells[SketchKind.SYNC]
            nofb = nofb_row.cells[SketchKind.SYNC]
            if not nofb.success or nofb.attempts >= 3 * fb.attempts:
                much_worse += 1
        assert much_worse >= 3, f"feedback only mattered on {much_worse} bugs"

    benchmark.pedantic(check, rounds=1, iterations=1)
