"""E9 (extension) - exploration-strategy ablation.

Beyond the paper's feedback-vs-none ablation (E5), this compares three
ways of exploring the space a SYNC sketch leaves open:

* ``feedback``  - PRES proper: race-directed flips mined from failures;
* ``random``    - re-roll every unconstrained choice uniformly per attempt;
* ``pct``       - PCT-style priority schedules (Burckhardt et al.), the
  strongest published stress baseline for ordering bugs.

Expected shape: PCT beats uniform random on low-depth ordering bugs (it
concentrates probability on few-ordering-point schedules), but feedback
dominates in aggregate because it *learns* the specific races that
matter.
"""

import pytest

from repro.apps import all_bugs
from repro.bench import format_table
from repro.bench.attempts import attempts_row
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.bench.seeds import find_failing_seed
from repro.sim import MachineConfig

CAP = 400


def _attempts_for(spec, use_feedback, base_policy):
    seed = find_failing_seed(spec)
    recorded = record(
        spec.make_program(),
        SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )
    report = reproduce(
        recorded,
        ExplorerConfig(max_attempts=CAP),
        use_feedback=use_feedback,
        base_policy=base_policy,
    )
    return report.attempts if report.success else None


@pytest.fixture(scope="module")
def strategy_table():
    table = {}
    for spec in all_bugs():
        table[spec.bug_id] = {
            "feedback": _attempts_for(spec, True, "random"),
            "random": _attempts_for(spec, False, "random"),
            "pct": _attempts_for(spec, False, "pct"),
        }
    return table


def test_e9_strategy_table(strategy_table, publish, benchmark):
    def check():
        rows = []
        for bug_id, cells in strategy_table.items():
            rows.append(
                [bug_id]
                + [
                    str(cells[s]) if cells[s] is not None else f">{CAP}"
                    for s in ("feedback", "random", "pct")
                ]
            )
        return format_table(
            ["bug", "feedback", "random", "pct"],
            rows,
            title=f"E9: attempts by exploration strategy (SYNC sketch, cap {CAP})",
        )

    table = benchmark.pedantic(check, rounds=1, iterations=1)
    publish("e9_exploration_strategies", table)


def test_e9_feedback_dominates_in_aggregate(strategy_table, benchmark):
    def check():
        def total(strategy):
            return sum(
                cells[strategy] if cells[strategy] is not None else CAP
                for cells in strategy_table.values()
            )

        fb, rnd, pct = total("feedback"), total("random"), total("pct")
        assert fb <= rnd and fb <= pct, (fb, rnd, pct)
        return fb, rnd, pct

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e9_feedback_always_succeeds(strategy_table, benchmark):
    def check():
        for bug_id, cells in strategy_table.items():
            assert cells["feedback"] is not None, bug_id

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e9_pct_beats_random_somewhere(strategy_table, benchmark):
    def check():
        wins = sum(
            1
            for cells in strategy_table.values()
            if cells["pct"] is not None
            and (cells["random"] is None or cells["pct"] < cells["random"])
        )
        assert wins >= 2, f"PCT only won on {wins} bugs"

    benchmark.pedantic(check, rounds=1, iterations=1)
