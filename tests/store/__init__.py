"""Tests for the cross-run attempt store (:mod:`repro.store`)."""
