"""Warm-start reproduction through the cross-run attempt store.

The store's engine-facing contract: with ``store=`` a reproduction
reports *exactly* what it reports without one (same attempt sequence,
winner, and complete log) — a warm store may only turn live replays into
folds of memoized outcomes.  That must hold cold, warm, partially
populated (after gc), and for every ``jobs`` value.
"""

import pytest

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.feedback import AttemptCache
from repro.core.recorder import record
from repro.core.reproducer import reproduce, reproduce_degraded
from repro.core.sketches import SketchKind
from repro.errors import SimUsageError
from repro.obs.session import ObsSession
from repro.sim import MachineConfig
from repro.store import AttemptStore

BUG = "mysql-atom-log"  # explores ~19 attempts before matching


@pytest.fixture(scope="module")
def recorded():
    spec = get_bug(BUG)
    seed = find_failing_seed(spec, ncpus=4)
    assert seed is not None
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


def _keys(report):
    return [(r.outcome, r.base_seed, r.n_constraints) for r in report.records]


def _assert_identical(left, right):
    assert left.success == right.success
    assert left.attempts == right.attempts
    assert left.winning_constraints == right.winning_constraints
    assert _keys(left) == _keys(right)
    if left.success:
        assert left.complete_log.schedule == right.complete_log.schedule


CFG = ExplorerConfig(max_attempts=40)


class TestWarmStart:
    def test_warm_run_answers_every_attempt_from_disk(self, recorded, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = reproduce(recorded, CFG, store=store_dir)
        warm = reproduce(recorded, CFG, store=store_dir)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.attempts == cold.attempts
        _assert_identical(warm, cold)

    def test_store_on_reports_exactly_like_store_off(self, recorded, tmp_path):
        plain = reproduce(recorded, CFG)
        stored = reproduce(recorded, CFG, store=str(tmp_path / "store"))
        _assert_identical(stored, plain)

    def test_partially_populated_store_replays_only_missing_keys(
        self, recorded, tmp_path
    ):
        store_dir = str(tmp_path / "store")
        cold = reproduce(recorded, CFG, store=store_dir)
        records = AttemptStore(store_dir).stats().records
        gc_report = AttemptStore(store_dir).gc(max(1, records // 2))
        assert gc_report.evicted > 0

        partial = reproduce(recorded, CFG, store=store_dir)
        _assert_identical(partial, cold)
        live = partial.attempts - partial.cache_hits
        assert 0 < live <= gc_report.evicted

    def test_degraded_ladder_shares_the_store(self, recorded, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = reproduce_degraded(recorded, CFG, store=store_dir)
        warm = reproduce_degraded(recorded, CFG, store=store_dir)
        assert warm.cache_hits == warm.attempts
        _assert_identical(warm, cold)


class TestJobsEquivalence:
    def test_store_preserves_jobs_equivalence(self, recorded, tmp_path):
        config = ExplorerConfig(max_attempts=25, batch_size=8)
        serial = reproduce(recorded, config, jobs=1,
                           store=str(tmp_path / "serial"))
        pooled = reproduce(recorded, config, jobs=4,
                           store=str(tmp_path / "pooled"))
        _assert_identical(pooled, serial)

        # A store written at jobs=1 warms a jobs=4 run completely.
        warm = reproduce(recorded, config, jobs=4,
                         store=str(tmp_path / "serial"))
        assert warm.cache_hits == warm.attempts
        _assert_identical(warm, serial)


class TestWiring:
    def test_store_and_cache_are_mutually_exclusive(self, recorded, tmp_path):
        with pytest.raises(SimUsageError):
            reproduce(recorded, CFG, cache=AttemptCache(),
                      store=str(tmp_path / "store"))

    def test_store_metrics_are_charged_into_the_session(
        self, recorded, tmp_path
    ):
        store_dir = str(tmp_path / "store")
        cold_obs = ObsSession.create(trace=False, metrics=True)
        cold = reproduce(recorded, CFG, store=store_dir, obs=cold_obs)
        counters = cold_obs.metrics.snapshot()["counters"]
        assert counters["store.appends"] == cold.attempts
        assert counters["store.misses"] >= cold.attempts

        warm_obs = ObsSession.create(trace=False, metrics=True)
        warm = reproduce(recorded, CFG, store=store_dir, obs=warm_obs)
        counters = warm_obs.metrics.snapshot()["counters"]
        assert counters["store.hits"] == warm.attempts
        assert counters.get("store.appends", 0) == 0
