"""Epoch-base expiry: the store-side half of the rolling window.

An epoch-suffix log's fingerprint carries its boundary-snapshot identity
(:func:`repro.core.epochs.base_tag`), so once the window drops that
boundary the shard persisted under it can never be looked up again.
``epochs.json`` registers which fingerprints are epoch-bound;
:meth:`AttemptStore.expire_epochs` removes registered-but-dead shards
and leaves everything else (full-history shards, live bases) alone.
"""

import json
import os

from repro.store import AttemptStore, EpochExpiryReport
from repro.store.attempt_store import EPOCHS_FILE

from tests.store.test_attempt_store import _key, _outcome, _shard_file

EPOCH_FPS = ("aacafe0001", "aadead0002")
PLAIN_FP = "bbcafe0003"


def _seed_store(root):
    """One shard per fingerprint; the first two registered as epoch-bound."""
    store = AttemptStore(str(root))
    for fp in EPOCH_FPS + (PLAIN_FP,):
        key = _key(fp)
        store.put(key, _outcome(key))
    store.register_epoch_fingerprints(
        {fp: {"program": "counter", "seed": 7, "base": f"counter:7:{i}:10"}
         for i, fp in enumerate(EPOCH_FPS)}
    )
    return store


class TestRegistry:
    def test_registry_written_sorted_and_atomic(self, tmp_path):
        with _seed_store(tmp_path) as store:
            payload = json.loads(
                (tmp_path / EPOCHS_FILE).read_text(encoding="utf-8")
            )
            assert sorted(payload["bases"]) == list(payload["bases"])
            assert set(payload["bases"]) == set(EPOCH_FPS)
            assert store.salvage_events == 0

    def test_registration_is_idempotent(self, tmp_path):
        with _seed_store(tmp_path) as store:
            before = (tmp_path / EPOCHS_FILE).read_text(encoding="utf-8")
            store.register_epoch_fingerprints(
                {EPOCH_FPS[0]: {"program": "counter", "seed": 7,
                                "base": "counter:7:0:10"}}
            )
            assert (tmp_path / EPOCHS_FILE).read_text(
                encoding="utf-8"
            ) == before

    def test_empty_registration_writes_nothing(self, tmp_path):
        with AttemptStore(str(tmp_path)) as store:
            store.register_epoch_fingerprints({})
            assert not os.path.exists(tmp_path / EPOCHS_FILE)


class TestExpiry:
    def test_expires_only_registered_dead_bases(self, tmp_path):
        with _seed_store(tmp_path) as store:
            report = store.expire_epochs({EPOCH_FPS[0]})
            assert isinstance(report, EpochExpiryReport)
            assert report.expired == [EPOCH_FPS[1]]
            assert report.shards_removed == 1
            assert report.live == 1
            # The dead base's shard is gone; the live base and the
            # never-registered full-history shard are untouched.
            assert not os.path.exists(_shard_file(tmp_path, EPOCH_FPS[1]))
            assert os.path.exists(_shard_file(tmp_path, EPOCH_FPS[0]))
            assert os.path.exists(_shard_file(tmp_path, PLAIN_FP))
            assert store.get(_key(PLAIN_FP)) is not None

    def test_expiry_updates_registry(self, tmp_path):
        with _seed_store(tmp_path) as store:
            store.expire_epochs(set())
            payload = json.loads(
                (tmp_path / EPOCHS_FILE).read_text(encoding="utf-8")
            )
            assert payload["bases"] == {}
            # A second pass is a no-op.
            again = store.expire_epochs(set())
            assert again.expired == []
            assert again.shards_removed == 0

    def test_all_live_is_a_noop(self, tmp_path):
        with _seed_store(tmp_path) as store:
            before = (tmp_path / EPOCHS_FILE).read_text(encoding="utf-8")
            report = store.expire_epochs(set(EPOCH_FPS))
            assert report.expired == []
            assert report.live == 2
            assert (tmp_path / EPOCHS_FILE).read_text(
                encoding="utf-8"
            ) == before

    def test_describe_summarizes_the_pass(self, tmp_path):
        with _seed_store(tmp_path) as store:
            text = store.expire_epochs({EPOCH_FPS[0]}).describe()
            assert "1 epoch base(s) expired" in text
            assert "1 live" in text


class TestTornRegistry:
    def test_torn_registry_tolerated(self, tmp_path):
        with _seed_store(tmp_path) as store:
            (tmp_path / EPOCHS_FILE).write_text("{torn", encoding="utf-8")
            report = store.expire_epochs(set())
            # The torn registry costs only expiry bookkeeping: nothing
            # expires, records stay intact, the damage is counted.
            assert report.expired == []
            assert store.salvage_events == 1
            for fp in EPOCH_FPS + (PLAIN_FP,):
                assert store.get(_key(fp)) is not None

    def test_missing_registry_is_empty(self, tmp_path):
        with AttemptStore(str(tmp_path)) as store:
            report = store.expire_epochs({"whatever"})
            assert report.expired == []
            assert report.live == 0
