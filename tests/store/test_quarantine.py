"""Store corruption handling: quarantine, read-only verify, and triage.

The robustness contract for the attempt store (``docs/resilience.md``):
damaged bytes anywhere in the store are a *cache miss*, never an
exception — undecodable records are moved aside as ``.quarantine`` /
``.corrupt`` evidence and counted (``store.quarantined``), and the
reproduction replays the lost attempts live with an identical report.
``pres store verify`` inspects without opening (no epoch bump), and
``pres doctor`` on a store directory distinguishes quarantine evidence
(informational) from stale temp files (damage; removable with
``--clean``).
"""

import json
import os

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.feedback import AttemptCache
from repro.core.parallel import AttemptOutcome
from repro.obs.metrics import MetricsRegistry
from repro.robust.doctor import examine_store
from repro.store import (
    AttemptStore,
    PersistentAttemptCache,
    find_quarantine_files,
    find_stale_files,
    verify_store,
)
from repro.store.attempt_store import SHARD_FILE

FPS = ("aacafe0001", "bbdead0002")


def _ref(tid, occurrence=0):
    return EventRef(tid=tid, family="rw", key=("x", 0), occurrence=occurrence)


def _key(fp, seed=0):
    constraints = frozenset(
        {OrderConstraint(before=_ref(1, seed), after=_ref(2, seed))}
    )
    return AttemptCache.key_for(("sync", 9, fp), constraints, seed,
                                "random", False)


def _outcome(key):
    return AttemptOutcome(
        constraints=key[1],
        seed=key[2],
        outcome="no-failure",
        detail="ran",
        steps=10 + key[2],
        matched=False,
        fingerprint=f"x:{key[2]}",
        schedule=(1, 2, 1),
    )


def _shard_file(root, fp):
    return os.path.join(str(root), fp[:2], fp, SHARD_FILE)


def _seeded(root, n_per_shard=3, fps=FPS):
    keys = []
    with AttemptStore(str(root)) as store:
        for seed in range(n_per_shard):
            for fp in fps:
                key = _key(fp, seed)
                assert store.put(key, _outcome(key))
                keys.append(key)
    return keys


def _garble_line(path, index):
    """Replace one line of a shard with undecodable bytes."""
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines(keepends=True)
    lines[index] = "?garbled?not-json?\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)


class TestQuarantine:
    def test_garbled_record_is_a_miss_with_a_quarantine_sidecar(
        self, tmp_path
    ):
        _seeded(tmp_path)
        shard = _shard_file(tmp_path, FPS[0])
        _garble_line(shard, 2)  # a body record, not the header

        store = AttemptStore(str(tmp_path))
        survivors = [store.get(_key(FPS[0], seed)) for seed in range(3)]
        assert None in survivors  # the garbled record is gone...
        assert any(o is not None for o in survivors)  # ...others survive
        assert store.quarantined > 0
        sidecars = find_quarantine_files(str(tmp_path))
        assert sidecars and sidecars[0].endswith(".quarantine")

    def test_unreadable_header_rotates_the_shard_aside(self, tmp_path):
        _seeded(tmp_path)
        shard = _shard_file(tmp_path, FPS[0])
        _garble_line(shard, 0)  # the header: salvage cannot trust anything

        store = AttemptStore(str(tmp_path))
        assert store.get(_key(FPS[0], 0)) is None  # miss, no exception
        assert store.quarantined > 0
        assert any(
            path.endswith(".corrupt")
            for path in find_quarantine_files(str(tmp_path))
        )
        # The untouched shard still answers.
        assert store.get(_key(FPS[1], 0)) is not None

    def test_persistent_cache_charges_the_quarantine_metric(self, tmp_path):
        _seeded(tmp_path)
        _garble_line(_shard_file(tmp_path, FPS[0]), 2)

        registry = MetricsRegistry()
        cache = PersistentAttemptCache(str(tmp_path))
        cache.bind_metrics(registry)
        cache.get(_key(FPS[0], 0))
        assert registry.counter("store.quarantined").value > 0


class TestVerify:
    def test_verify_store_does_not_bump_the_epoch(self, tmp_path):
        _seeded(tmp_path)
        before = json.loads((tmp_path / "meta.json").read_text())["epoch"]
        report = verify_store(str(tmp_path))
        assert report.ok is True
        after = json.loads((tmp_path / "meta.json").read_text())["epoch"]
        assert after == before

    def test_stale_temp_files_fail_verify(self, tmp_path):
        _seeded(tmp_path)
        (tmp_path / "aa" / "gc-leftover.gc").write_text("")
        (tmp_path / "rebuild-leftover.rebuild").write_text("")
        (tmp_path / "aa" / "shard.tmp.123").write_text("")

        report = verify_store(str(tmp_path))
        assert report.ok is False
        assert len(report.stale) == 3
        assert report.stale == find_stale_files(str(tmp_path))
        assert "stale" in report.describe()

    def test_quarantine_sidecars_are_evidence_not_damage(self, tmp_path):
        _seeded(tmp_path)
        _garble_line(_shard_file(tmp_path, FPS[0]), 2)
        AttemptStore(str(tmp_path)).get(_key(FPS[0], 0))  # quarantines

        report = verify_store(str(tmp_path))
        assert report.quarantine  # listed...
        assert report.ok is True  # ...but the store verifies clean


class TestDoctorTriage:
    def test_examine_store_flags_stale_and_clean_removes_them(
        self, tmp_path
    ):
        _seeded(tmp_path)
        stale = tmp_path / "aa" / "leftover.gc"
        stale.write_text("")

        diagnosis = examine_store(str(tmp_path))
        assert diagnosis.ok is False
        assert diagnosis.exit_code == 1
        assert diagnosis.stale == [str(stale)]

        removed = diagnosis.clean()
        assert removed == [str(stale)]
        assert not stale.exists()
        assert examine_store(str(tmp_path)).ok is True

    def test_clean_leaves_quarantine_evidence_alone(self, tmp_path):
        _seeded(tmp_path)
        _garble_line(_shard_file(tmp_path, FPS[0]), 2)
        AttemptStore(str(tmp_path)).get(_key(FPS[0], 0))
        sidecars = find_quarantine_files(str(tmp_path))
        assert sidecars

        diagnosis = examine_store(str(tmp_path))
        diagnosis.clean()
        assert find_quarantine_files(str(tmp_path)) == sidecars
