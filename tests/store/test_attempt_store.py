"""AttemptStore persistence, crash-consistency, verify, and gc.

The crash-consistency tests use the deterministic fault injectors from
:mod:`repro.robust.inject` to model the two storage failures the store
must survive: a process killed mid-append (torn tail — costs at most the
record being written) and damaged bytes (salvage keeps the valid prefix;
an unreadable header rotates the shard aside instead of crashing).
"""

import os
from dataclasses import replace

import pytest

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.feedback import AttemptCache
from repro.core.parallel import AttemptOutcome
from repro.robust.inject import seeded_truncate_offset, truncate_file
from repro.robust.journal import ATTEMPTS_KIND, JournalWriter
from repro.store import AttemptStore
from repro.store.attempt_store import SHARD_FILE
from repro.store.codec import encode_record

FPS = ("aacafe0001", "aadead0002", "bbcafe0003")


def _ref(tid, occurrence=0):
    return EventRef(tid=tid, family="rw", key=("x", 0), occurrence=occurrence)


def _key(fp, seed=0):
    constraints = frozenset(
        {OrderConstraint(before=_ref(1, seed), after=_ref(2, seed))}
    )
    return AttemptCache.key_for(("sync", 9, fp), constraints, seed,
                                "random", False)


def _outcome(key):
    return AttemptOutcome(
        constraints=key[1],
        seed=key[2],
        outcome="no-failure",
        detail="ran",
        steps=10 + key[2],
        matched=False,
        fingerprint=f"x:{key[2]}",
        schedule=(1, 2, 1),
    )


def _shard_file(root, fp):
    return os.path.join(str(root), fp[:2], fp, SHARD_FILE)


def _seeded(root, n_per_shard=1, fps=FPS):
    """A store holding one record per (seed, fingerprint); returns keys
    in recorded order."""
    keys = []
    with AttemptStore(str(root)) as store:
        for seed in range(n_per_shard):
            for fp in fps:
                key = _key(fp, seed)
                assert store.put(key, _outcome(key))
                keys.append(key)
    return keys


class TestPersistence:
    def test_round_trips_across_store_instances(self, tmp_path):
        keys = _seeded(tmp_path)
        with AttemptStore(str(tmp_path)) as store:
            for key in keys:
                assert store.get(key) == _outcome(key)

    def test_layout_is_sharded_by_fingerprint(self, tmp_path):
        _seeded(tmp_path)
        for fp in FPS:
            assert os.path.isfile(_shard_file(tmp_path, fp))

    def test_put_is_idempotent_within_and_across_sessions(self, tmp_path):
        key = _key(FPS[0])
        with AttemptStore(str(tmp_path)) as store:
            assert store.put(key, _outcome(key)) is True
            assert store.put(key, _outcome(key)) is False
            assert store.appends == 1
        with AttemptStore(str(tmp_path)) as store:
            assert store.put(key, _outcome(key)) is False
            assert store.stats().records == 1

    def test_spans_are_stripped_before_persisting(self, tmp_path):
        key = _key(FPS[0])
        with AttemptStore(str(tmp_path)) as store:
            store.put(key, replace(_outcome(key), spans=("a-span",)))
        with AttemptStore(str(tmp_path)) as store:
            assert store.get(key).spans == ()

    def test_epoch_bumps_per_open_and_survives_corrupt_meta(self, tmp_path):
        assert AttemptStore(str(tmp_path)).epoch == 1
        assert AttemptStore(str(tmp_path)).epoch == 2
        (tmp_path / "meta.json").write_text("not json")
        store = AttemptStore(str(tmp_path))
        assert store.epoch == 1  # counter restarts; records are unaffected
        assert store.salvage_events >= 1

    def test_stats_totals(self, tmp_path):
        keys = _seeded(tmp_path, n_per_shard=2)
        stats = AttemptStore(str(tmp_path)).stats()
        assert stats.records == len(keys)
        assert stats.shards == len(FPS)
        assert stats.corrupt_shards == 0
        assert stats.size_bytes > 0
        assert "attempt record(s)" in stats.describe()


class TestCrashConsistency:
    def test_torn_tail_costs_at_most_the_last_record(self, tmp_path):
        keys = _seeded(tmp_path, n_per_shard=3, fps=(FPS[0],))
        shard = _shard_file(tmp_path, FPS[0])
        truncate_file(shard, -5)  # killed mid-append of the last record

        store = AttemptStore(str(tmp_path))
        report = store.verify()
        assert not report.ok and report.exit_code == 1
        (shard_report,) = report.shards
        assert shard_report.status == "torn"
        assert shard_report.records == 2
        assert shard_report.dropped >= 1
        assert "DAMAGED" in report.describe()

        # Every complete record survives; only the torn one is gone.
        assert store.get(keys[0]) == _outcome(keys[0])
        assert store.get(keys[1]) == _outcome(keys[1])
        assert store.get(keys[2]) is None
        assert store.salvage_events >= 1

        # Re-putting resumes the journal and heals the tail in place.
        assert store.put(keys[2], _outcome(keys[2])) is True
        store.close()
        healed = AttemptStore(str(tmp_path)).verify()
        assert healed.ok
        assert healed.shards[0].records == 3

    def test_mid_file_kill_leaves_a_complete_prefix(self, tmp_path):
        keys = _seeded(tmp_path, n_per_shard=4, fps=(FPS[0],))
        shard = _shard_file(tmp_path, FPS[0])
        truncate_file(shard, seeded_truncate_offset(shard, seed=5))

        store = AttemptStore(str(tmp_path))
        present = [store.get(key) is not None for key in keys]
        # Salvage keeps a prefix of recorded order: once a record is
        # lost, everything after it is too (never a hole in the middle).
        assert present == sorted(present, reverse=True)
        for key, alive in zip(keys, present):
            if alive:
                assert store.get(key) == _outcome(key)
        (shard_report,) = store.verify().shards
        assert shard_report.status in ("ok", "torn")

    def test_header_damage_rotates_the_shard_aside(self, tmp_path):
        keys = _seeded(tmp_path, fps=(FPS[0],))
        shard = _shard_file(tmp_path, FPS[0])
        truncate_file(shard, 3)  # nothing left, not even the header

        store = AttemptStore(str(tmp_path))
        (shard_report,) = store.verify().shards
        assert shard_report.status == "corrupt"

        assert store.get(keys[0]) is None  # rotates the wreck aside
        assert store.salvage_events >= 1
        assert os.path.isfile(shard + ".corrupt")

        # A fresh shard grows in its place.
        assert store.put(keys[0], _outcome(keys[0])) is True
        store.close()
        report = AttemptStore(str(tmp_path)).verify()
        assert report.ok
        assert report.shards[0].records == 1


class TestVerify:
    def _append_raw(self, root, fp, payload):
        writer = JournalWriter(
            _shard_file(root, fp), ATTEMPTS_KIND,
            {"fingerprint": fp}, resume=True,
        )
        writer.append(payload)
        writer.close()

    def test_clean_store_verifies_ok(self, tmp_path):
        _seeded(tmp_path)
        report = AttemptStore(str(tmp_path)).verify()
        assert report.ok and report.exit_code == 0
        assert report.describe().endswith("store: ok")

    def test_misfiled_record_is_reported_and_skipped(self, tmp_path):
        keys = _seeded(tmp_path, fps=(FPS[0],))
        stray = _key(FPS[1], 9)
        self._append_raw(
            tmp_path, FPS[0], encode_record(stray, _outcome(stray), (9, 9))
        )

        store = AttemptStore(str(tmp_path))
        (shard_report,) = store.verify().shards
        assert shard_report.status == "invalid-records"
        assert shard_report.records == 1
        assert shard_report.dropped == 1
        assert "wrong fingerprint" in shard_report.detail

        # Loads skip the stray record instead of serving it.
        assert store.get(keys[0]) == _outcome(keys[0])
        assert store.get(stray) is None
        assert store.salvage_events >= 1

    def test_undecodable_record_is_reported(self, tmp_path):
        _seeded(tmp_path, fps=(FPS[0],))
        self._append_raw(tmp_path, FPS[0], {"nope": 1})
        (shard_report,) = AttemptStore(str(tmp_path)).verify().shards
        assert shard_report.status == "invalid-records"
        assert shard_report.records == 1


class TestGC:
    def test_evicts_oldest_recorded_first(self, tmp_path):
        keys = _seeded(tmp_path, n_per_shard=2)  # 6 records, known order
        store = AttemptStore(str(tmp_path))
        report = store.gc(2)
        assert report.records_before == 6
        assert report.records_after == 2
        assert report.evicted == 4
        assert store.evictions == 4
        for key in keys[:4]:
            assert store.get(key) is None
        for key in keys[4:]:
            assert store.get(key) == _outcome(key)

    def test_gc_is_deterministic_across_equal_stores(self, tmp_path):
        for name in ("a", "b"):
            _seeded(tmp_path / name, n_per_shard=3)
        keys = _seeded(tmp_path / "c", n_per_shard=3)  # same recorded order
        survivors = []
        for name in ("a", "b"):
            store = AttemptStore(str(tmp_path / name))
            store.gc(4)
            survivors.append([store.get(key) is not None for key in keys])
        assert survivors[0] == survivors[1]
        assert sum(survivors[0]) == 4

    def test_emptied_shards_and_dirs_are_pruned(self, tmp_path):
        _seeded(tmp_path)
        report = AttemptStore(str(tmp_path)).gc(0)
        assert report.records_after == 0
        assert report.shards_removed == len(FPS)
        for fp in FPS:
            assert not os.path.exists(os.path.dirname(_shard_file(tmp_path, fp)))
        assert not (tmp_path / "aa").exists()
        assert (tmp_path / "meta.json").exists()
        assert AttemptStore(str(tmp_path)).verify().ok

    def test_gc_heals_damage_it_passes_over(self, tmp_path):
        _seeded(tmp_path, n_per_shard=3, fps=(FPS[0],))
        truncate_file(_shard_file(tmp_path, FPS[0]), -5)
        store = AttemptStore(str(tmp_path))
        report = store.gc(10)
        assert report.evicted == 0
        assert report.records_after == 2
        assert report.shards_rewritten == 1  # rewritten purely to heal
        assert AttemptStore(str(tmp_path)).verify().ok

    def test_negative_bound_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            AttemptStore(str(tmp_path)).gc(-1)
