"""Round-trip fidelity of the attempt-store JSON codec.

A warm run folds decoded outcomes back into the exploration engine in
place of live replays, so any drift through the JSON round trip (a tuple
decoded as a list, a candidate field lost) would change the frontier.
These tests pin exact equality through ``json.dumps``/``loads``.
"""

import json
from dataclasses import replace

import pytest

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.feedback import AttemptCache, Candidate
from repro.core.parallel import AttemptOutcome
from repro.errors import SketchFormatError
from repro.store.codec import (
    decode_key,
    decode_record,
    encode_key,
    encode_record,
)

FP = "deadbeef0001"


def _ref(tid, occurrence=0, key=("seg", 3)):
    return EventRef(tid=tid, family="rw", key=key, occurrence=occurrence)


def _constraints(n=2):
    return frozenset(
        OrderConstraint(before=_ref(1, i), after=_ref(2, i)) for i in range(n)
    )


def _key(seed=7, policy="random", match=False, constraints=None):
    return AttemptCache.key_for(
        ("sync", 9, FP),
        _constraints() if constraints is None else constraints,
        seed,
        policy,
        match,
    )


def _candidate(rank=0):
    return Candidate(
        constraints=_constraints(1),
        depth=2,
        anchor_gidx=5,
        shape="flip",
        tier=1,
        rank=rank,
    )


def _outcome(key, schedule=(1, 2, 1)):
    return AttemptOutcome(
        constraints=key[1],
        seed=key[2],
        outcome="no-failure",
        detail="ran clean",
        steps=12,
        matched=False,
        fingerprint="fp:abc",
        candidates=(_candidate(0), _candidate(1)),
        schedule=schedule,
    )


def _wire(value):
    """The JSON round trip every persisted record takes."""
    return json.loads(json.dumps(value))


class TestKeyRoundTrip:
    def test_key_round_trips_exactly(self):
        key = _key()
        assert decode_key(_wire(encode_key(key))) == key

    def test_tuple_event_keys_come_back_as_tuples(self):
        key = _key(constraints=frozenset({
            OrderConstraint(before=_ref(1, 0, key=("page", 4, "slot")),
                            after=_ref(2, 0, key=("page", 4, "slot"))),
        }))
        decoded = decode_key(_wire(encode_key(key)))
        (constraint,) = decoded[1]
        assert constraint.before.key == ("page", 4, "slot")
        assert isinstance(constraint.before.key, tuple)

    def test_encoding_is_constraint_order_independent(self):
        ordered = list(_constraints(3))
        forward = _key(constraints=frozenset(ordered))
        backward = _key(constraints=frozenset(reversed(ordered)))
        assert json.dumps(encode_key(forward), sort_keys=True) == json.dumps(
            encode_key(backward), sort_keys=True
        )


class TestRecordRoundTrip:
    def test_record_round_trips_exactly(self):
        key = _key()
        outcome = _outcome(key)
        decoded_key, decoded_outcome, tick = decode_record(
            _wire(encode_record(key, outcome, (3, 4)))
        )
        assert decoded_key == key
        assert decoded_outcome == outcome
        assert tick == (3, 4)

    def test_missing_schedule_round_trips_as_none(self):
        key = _key()
        _, decoded, _ = decode_record(
            _wire(encode_record(key, _outcome(key, schedule=None), (0, 0)))
        )
        assert decoded.schedule is None

    def test_spans_never_reach_the_wire(self):
        key = _key()
        outcome = _outcome(key)
        spanned = replace(outcome, spans=("a-span",))
        assert encode_record(key, spanned, (0, 0)) == encode_record(
            key, outcome, (0, 0)
        )
        _, decoded, _ = decode_record(_wire(encode_record(key, spanned, (0, 0))))
        assert decoded.spans == ()


class TestDamage:
    def _good(self):
        key = _key()
        return _wire(encode_record(key, _outcome(key), (1, 2)))

    def test_bad_payloads_raise_sketch_format_error(self):
        good = self._good()
        missing_outcome = dict(good)
        del missing_outcome["outcome"]
        short_tick = dict(good, tick=[1])
        gutted_outcome = dict(good, outcome={"outcome": "x"})
        for bad in ({}, "not a dict", 7, missing_outcome, short_tick,
                    gutted_outcome):
            with pytest.raises(SketchFormatError):
                decode_record(bad)

    def test_damaged_key_raises_not_crashes(self):
        good = self._good()
        bad = dict(good, key=dict(good["key"], constraints=[{"before": {}}]))
        with pytest.raises(SketchFormatError):
            decode_record(bad)
