"""Concurrent store access: gc rewrites are invisible to readers.

The store's cross-process contract (``docs/store.md``, "Concurrency
model"): gc rewrites a surviving shard by journaling to a temp file and
``os.replace``-ing it over the old one, so a concurrent reader opening
``attempts.jsonl`` sees the *old* complete journal or the *new* complete
journal — never a torn hybrid.  The reproduction service leans on this:
``pres store gc`` is documented as safe against a live server.

Exercised here with real processes: two readers repeatedly open and
decode every shard while the parent runs gc pass after gc pass over the
same store.  Any torn, truncated, or undecodable shard observed by
either reader fails the test.

The in-process side of the same story — several service job threads
sharing one tenant's ``PersistentAttemptCache`` — is covered by a
thread hammer at the bottom.
"""

import multiprocessing
import os
import threading

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.feedback import AttemptCache
from repro.core.parallel import AttemptOutcome
from repro.robust.journal import salvage
from repro.store import AttemptStore, verify_store
from repro.store.attempt_store import iter_shard_files
from repro.store.codec import decode_record
from repro.store.persistent import PersistentAttemptCache

FPS = (
    "aacafe0001", "aadead0002", "bbcafe0003",
    "bbdead0004", "cccafe0005", "ccdead0006",
)
SEEDS_PER_FP = 30


def _ref(tid, occurrence=0):
    return EventRef(tid=tid, family="rw", key=("x", 0), occurrence=occurrence)


def _key(fp, seed=0):
    constraints = frozenset(
        {OrderConstraint(before=_ref(1, seed), after=_ref(2, seed))}
    )
    return AttemptCache.key_for(("sync", 9, fp), constraints, seed,
                                "random", False)


def _outcome(key):
    return AttemptOutcome(
        constraints=key[1],
        seed=key[2],
        outcome="no-failure",
        detail="ran",
        steps=10 + key[2],
        matched=False,
        fingerprint=f"x:{key[2]}",
        schedule=(1, 2, 1),
    )


def _populate(root):
    """Round-robin across fingerprints so gc passes touch them all."""
    with AttemptStore(root) as store:
        for seed in range(SEEDS_PER_FP):
            for fp in FPS:
                key = _key(fp, seed)
                assert store.put(key, _outcome(key))


def _read_shards_forever(root, stop, failures):
    """Reader process: decode every shard until told to stop.

    A shard may legitimately vanish (gc emptied it) between the listing
    and the open; anything else — torn tail, dropped line, undecodable
    record — is a torn read and gets reported.
    """
    while not stop.is_set():
        for fingerprint, path in iter_shard_files(root):
            try:
                report = salvage(path)
            except FileNotFoundError:
                continue
            except OSError as exc:
                failures.put(f"{fingerprint}: unreadable: {exc}")
                continue
            if report.unrecoverable or report.dropped_lines:
                failures.put(
                    f"{fingerprint}: torn shard "
                    f"({report.reason}, dropped={report.dropped_lines})"
                )
                continue
            for payload in report.records:
                try:
                    decode_record(payload)
                except Exception as exc:
                    failures.put(f"{fingerprint}: undecodable record: {exc}")


def test_gc_writer_never_exposes_torn_shards_to_reader_processes(tmp_path):
    root = str(tmp_path / "store")
    _populate(root)
    total = len(FPS) * SEEDS_PER_FP

    stop = multiprocessing.Event()
    failures = multiprocessing.Queue()
    readers = [
        multiprocessing.Process(
            target=_read_shards_forever, args=(root, stop, failures)
        )
        for _ in range(2)
    ]
    for reader in readers:
        reader.start()
    try:
        # One gc pass per bound: each evicts the single oldest surviving
        # record and atomically rewrites its shard, giving the readers
        # ~120 os.replace windows to catch a torn state in.
        store = AttemptStore(root)
        for bound in range(total - 1, total - 121, -1):
            report = store.gc(bound)
            assert report.records_after == bound
        store.close()
    finally:
        stop.set()
        for reader in readers:
            reader.join(timeout=30)
            assert reader.exitcode == 0

    torn = []
    while not failures.empty():
        torn.append(failures.get())
    assert not torn, "\n".join(torn)
    # After the dust settles the store is still fully healthy.
    assert verify_store(root).ok


def test_threads_sharing_one_persistent_cache_stay_consistent(tmp_path):
    """The service's in-process mode: job threads share a tenant cache."""
    cache = PersistentAttemptCache(str(tmp_path / "tenant"))
    errors = []

    def hammer(worker):
        try:
            for seed in range(40):
                fp = FPS[(worker + seed) % len(FPS)]
                key = _key(fp, seed)
                cache.put(key, _outcome(key))
                got = cache.get(key)
                assert got is not None and got.seed == seed
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"worker {worker}: {exc}")

    threads = [
        threading.Thread(target=hammer, args=(worker,)) for worker in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, "\n".join(errors)
    cache.close()

    # Every key every worker wrote is present and the store verifies.
    with AttemptStore(str(tmp_path / "tenant")) as store:
        for seed in range(40):
            for fp in sorted(set(FPS[(worker + seed) % len(FPS)] for worker in range(8))):
                assert store.get(_key(fp, seed)) is not None
    assert verify_store(str(tmp_path / "tenant")).ok
