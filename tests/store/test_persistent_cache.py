"""The PersistentAttemptCache write-through tier, in isolation.

Engine-level behavior (warm reproductions, jobs-invariance) lives in
``tests/store/test_warm_reproduce.py``; these tests pin the two-tier
cache mechanics: disk fallback with promotion, write-through puts, the
memory bound applying to promotions, and ``store.*`` metric charging.
"""

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.feedback import AttemptCache
from repro.core.parallel import AttemptOutcome
from repro.obs.metrics import MetricsRegistry
from repro.robust.inject import truncate_file
from repro.store import AttemptStore, PersistentAttemptCache

FP = "ccfeed0004"


def _ref(tid, occurrence=0):
    return EventRef(tid=tid, family="rw", key=("x", 0), occurrence=occurrence)


def _key(seed=0, fp=FP):
    constraints = frozenset(
        {OrderConstraint(before=_ref(1, seed), after=_ref(2, seed))}
    )
    return AttemptCache.key_for(("sync", 9, fp), constraints, seed,
                                "random", False)


def _outcome(key):
    return AttemptOutcome(
        constraints=key[1],
        seed=key[2],
        outcome="no-failure",
        detail="ran",
        steps=10,
        matched=False,
        fingerprint=f"x:{key[2]}",
    )


def _persisted(root, seeds=(0,)):
    keys = [_key(seed) for seed in seeds]
    with AttemptStore(str(root)) as store:
        for key in keys:
            store.put(key, _outcome(key))
    return keys


class TestTwoTiers:
    def test_disk_hit_is_promoted_into_memory(self, tmp_path):
        (key,) = _persisted(tmp_path)
        with PersistentAttemptCache(str(tmp_path)) as cache:
            assert cache.get(key) == _outcome(key)
            assert cache.disk_hits == 1 and cache.hits == 1
            assert cache.get(key) == _outcome(key)
            assert cache.disk_hits == 1  # second read served from memory
            assert cache.hits == 2

    def test_miss_falls_through_both_tiers(self, tmp_path):
        with PersistentAttemptCache(str(tmp_path)) as cache:
            assert cache.get(_key(99)) is None
            assert cache.misses == 1 and cache.disk_hits == 0

    def test_put_writes_through_to_disk(self, tmp_path):
        key = _key()
        with PersistentAttemptCache(str(tmp_path)) as cache:
            cache.put(key, _outcome(key))
        assert AttemptStore(str(tmp_path)).get(key) == _outcome(key)

    def test_memory_bound_applies_to_promotions(self, tmp_path):
        keys = _persisted(tmp_path, seeds=(0, 1, 2))
        with PersistentAttemptCache(str(tmp_path), max_entries=1) as cache:
            for key in keys:
                assert cache.get(key) == _outcome(key)
            assert len(cache) == 1
            assert cache.evictions == 2
            # Evicted entries are still answered — by the disk tier.
            assert cache.get(keys[0]) == _outcome(keys[0])
            assert cache.disk_hits == 4


class TestMetrics:
    def _counters(self, registry):
        return registry.snapshot()["counters"]

    def test_hits_misses_and_appends_are_charged(self, tmp_path):
        key = _key()
        registry = MetricsRegistry(enabled=True)
        with PersistentAttemptCache(str(tmp_path)) as cache:
            cache.bind_metrics(registry)
            cache.get(key)
            cache.put(key, _outcome(key))
        counters = self._counters(registry)
        assert counters["store.misses"] == 1
        assert counters["store.appends"] == 1

        warm_registry = MetricsRegistry(enabled=True)
        with PersistentAttemptCache(str(tmp_path)) as cache:
            cache.bind_metrics(warm_registry)
            assert cache.get(key) == _outcome(key)
            cache.put(key, _outcome(key))  # idempotent: no second append
        counters = self._counters(warm_registry)
        assert counters["store.hits"] == 1
        assert "store.appends" not in counters

    def test_salvage_and_eviction_events_are_charged(self, tmp_path):
        keys = _persisted(tmp_path, seeds=(0, 1, 2))
        shard = AttemptStore(str(tmp_path)).shard_path(FP)
        truncate_file(shard, -5)
        registry = MetricsRegistry(enabled=True)
        with PersistentAttemptCache(str(tmp_path), max_entries=1) as cache:
            cache.bind_metrics(registry)
            for key in keys:
                cache.get(key)
        counters = self._counters(registry)
        assert counters["store.salvage_events"] >= 1
        assert counters["store.evictions"] >= 1
