"""Unit tests for the benchmark harness helpers."""

import pytest

from repro.apps import get_bug
from repro.bench import (
    failure_rate,
    find_failing_seed,
    format_table,
    overhead_row,
)
from repro.bench.attempts import attempts_row, reproduce_once
from repro.bench.overhead import max_reduction
from repro.bench.scaling import scaling_curves
from repro.core.sketches import SketchKind


class TestSeeds:
    def test_find_failing_seed_finds_one(self):
        seed = find_failing_seed(get_bug("openldap-deadlock"))
        assert seed is not None
        assert seed >= 0

    def test_find_failing_seed_memoized(self):
        spec = get_bug("openldap-deadlock")
        assert find_failing_seed(spec) == find_failing_seed(spec)

    def test_failure_rate_in_unit_interval(self):
        rate = failure_rate(get_bug("fft-order-sync"), samples=40)
        assert 0.0 <= rate <= 1.0

    def test_fixed_variant_rate_is_zero(self):
        spec = get_bug("fft-order-sync")
        rate = failure_rate(spec, samples=30, buggy=False)
        assert rate == 0.0


class TestOverheadRow:
    def test_row_fields(self):
        row = overhead_row(
            get_bug("lu-atom-diag"),
            (SketchKind.SYNC, SketchKind.RW),
            seed=3,
        )
        assert row.bug_id == "lu-atom-diag"
        assert row.total_events > 0
        assert row.overhead_percent[SketchKind.RW] > row.overhead_percent[
            SketchKind.SYNC
        ]

    def test_reduction_vs_rw(self):
        row = overhead_row(
            get_bug("lu-atom-diag"), (SketchKind.SYNC, SketchKind.RW), seed=3
        )
        reduction = row.reduction_vs_rw(SketchKind.SYNC)
        assert reduction > 1
        assert max_reduction([row], SketchKind.SYNC) == reduction

    def test_zero_overhead_reduction_is_infinite(self):
        row = overhead_row(
            get_bug("lu-atom-diag"),
            (SketchKind.NONE, SketchKind.RW),
            seed=3,
        )
        assert row.reduction_vs_rw(SketchKind.NONE) == float("inf")


class TestAttemptsRow:
    def test_row_reports_success_cells(self):
        row = attempts_row(
            get_bug("fft-order-sync"),
            (SketchKind.SYNC, SketchKind.RW),
            max_attempts=200,
        )
        assert row.cells[SketchKind.RW].attempts == 1
        assert row.cells[SketchKind.SYNC].success
        assert row.cells[SketchKind.SYNC].render().isdigit()

    def test_reproduce_once_returns_report(self):
        report = reproduce_once(
            get_bug("openldap-deadlock"), SketchKind.SYNC, max_attempts=100
        )
        assert report.success
        assert report.complete_log is not None


class TestScaling:
    def test_curves_shape(self):
        spec = get_bug("fft-order-sync")
        curves = scaling_curves(
            spec,
            lambda n: spec.make_program(workers=n, seg=4),
            (SketchKind.SYNC, SketchKind.RW),
            cpu_counts=(2, 4),
        )
        assert len(curves) == 2
        for curve in curves:
            assert [p.ncpus for p in curve.points] == [2, 4]
        rw = next(c for c in curves if c.sketch is SketchKind.RW)
        assert rw.growth > 1.0


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 12345.0]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1] == "===="
        assert "name" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_float_formatting(self):
        text = format_table(["x"], [[12345.6]])
        assert "12,346" in text
        text = format_table(["x"], [[0.1234]])
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestRunner:
    def test_run_experiment_e6(self):
        from repro.bench.runner import run_experiment

        table = run_experiment("e6")
        assert "sketch log size" in table
        assert "radix-order-rank" in table

    def test_run_experiment_unknown(self):
        from repro.bench.runner import run_experiment

        with pytest.raises(ValueError, match="available"):
            run_experiment("nope")

    def test_available_experiments(self):
        from repro.bench.runner import available_experiments

        names = available_experiments()
        assert "t1" in names and "e1" in names and "e12" in names


class TestBenchResults:
    def test_structured_result_round_trips_json(self, tmp_path):
        import json

        from repro.bench.runner import run_experiment_result

        result = run_experiment_result("e6")
        payload = result.to_payload()
        json.dumps(payload)  # must be serializable as-is
        assert payload["experiment"] == "e6"
        assert payload["headers"][0] == "bug"
        assert len(payload["records"]) == 13
        assert all("log_bytes" in record for record in payload["records"])

        path = result.write_json(tmp_path)
        assert path.name == "BENCH_e6.json"
        assert json.loads(path.read_text())["experiment"] == "e6"

    def test_render_and_payload_agree(self):
        from repro.bench.results import BenchResult

        result = BenchResult(
            experiment="x", title="demo", headers=["a", "b"],
            rows=[["r", 1.5]], records=[{"a": "r", "b": 1.5}],
        )
        assert "demo" in result.render()
        assert result.to_payload()["rows"] == [["r", 1.5]]

    def test_jsonable_coerces_exotic_values(self):
        from repro.bench.results import jsonable

        assert jsonable(float("inf")) == "inf"
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable({1: float("nan")}) == {"1": "nan"}


class TestSpeedupHarness:
    def test_e12_arms_are_equivalent_and_cached(self):
        from repro.bench.speedup import e12_workload, run_speedup

        recorded = e12_workload()
        result = run_speedup(
            jobs=(2,), max_attempts=20, recorded=recorded, sort_repeats=20
        )
        labels = [record["label"] for record in result.records]
        assert labels == ["serial", "pool jobs=2", "cached re-walk"]
        # Deterministic merge: every arm reports the serial trajectory.
        assert all(record["matches_serial"] for record in result.records)
        attempts = {record["attempts"] for record in result.records}
        assert len(attempts) == 1
        cached = result.records[-1]
        assert cached["cache_hits"] == cached["attempts"]
        micro = result.meta["sort_microbench"]
        assert micro["sort_once_s"] < micro["per_attempt_sort_s"]
