"""Tests for bounded systematic schedule exploration."""

import pytest

from repro.core.systematic import systematic_search
from repro.sim import MachineConfig, Program
from repro.sim.failures import Failure, FailureKind

from tests.conftest import (
    counter_program,
    deadlock_program,
    order_violation_program,
)


def _lost_update_program(locked=False):
    def worker(ctx):
        if locked:
            yield ctx.lock("m")
        value = yield ctx.read("n")
        yield ctx.write("n", value + 1)
        if locked:
            yield ctx.unlock("m")

    def main(ctx):
        a = yield ctx.spawn(worker)
        b = yield ctx.spawn(worker)
        yield ctx.join(a)
        yield ctx.join(b)
        n = yield ctx.read("n")
        yield ctx.check(n == 2, "lost update")

    return Program("lu", main, initial_memory={"n": 0})


class TestFindsBugs:
    def test_order_violation_found_at_bound_zero(self):
        result = systematic_search(order_violation_program(), preemption_bound=0)
        assert result.found_failure
        assert result.exhausted
        assert result.first_failing_schedule is not None

    def test_lost_update_needs_exactly_one_preemption(self):
        program = _lost_update_program()
        at_zero = systematic_search(program, preemption_bound=0)
        at_one = systematic_search(program, preemption_bound=1)
        assert not at_zero.found_failure and at_zero.exhausted
        assert at_one.found_failure

    def test_deadlock_found(self):
        result = systematic_search(deadlock_program(), preemption_bound=1)
        assert result.found_failure
        signatures = {sig[0] for sig in result.failure_signatures}
        assert "deadlock" in signatures

    def test_first_failing_schedule_replays(self):
        from repro.sim import FixedOrderScheduler, Machine

        program = order_violation_program()
        result = systematic_search(program, preemption_bound=1)
        replay = Machine(
            program, FixedOrderScheduler(result.first_failing_schedule)
        ).run()
        assert replay.failed
        assert replay.failure.signature() in result.failure_signatures


class TestProvesAbsence:
    def test_locked_counter_proven_safe(self):
        result = systematic_search(
            _lost_update_program(locked=True), preemption_bound=2,
            max_schedules=50_000,
        )
        assert result.exhausted
        assert not result.found_failure

    def test_exhaustion_reported(self):
        result = systematic_search(order_violation_program(), preemption_bound=2)
        assert result.exhausted
        assert "exhausted" in result.describe()


class TestBudgets:
    def test_schedule_budget_respected(self):
        result = systematic_search(
            counter_program(nworkers=3, iters=3),
            preemption_bound=3,
            max_schedules=25,
        )
        assert result.schedules_run <= 25
        if not result.exhausted:
            assert "budget hit" in result.describe()

    def test_stop_at_first_failure(self):
        full = systematic_search(order_violation_program(), preemption_bound=2)
        early = systematic_search(
            order_violation_program(), preemption_bound=2,
            stop_at_first_failure=True,
        )
        assert early.found_failure
        assert early.schedules_run <= full.schedules_run

    def test_higher_bound_explores_more(self):
        program = _lost_update_program()
        low = systematic_search(program, preemption_bound=0)
        high = systematic_search(program, preemption_bound=2)
        assert high.schedules_run > low.schedules_run


class TestOracleIntegration:
    def test_wrong_output_oracle(self):
        def oracle(trace):
            if trace.final_memory.get("n") != 2:
                return Failure(FailureKind.WRONG_OUTPUT, where="n != 2")
            return None

        def worker(ctx):
            value = yield ctx.read("n")
            yield ctx.write("n", value + 1)

        def main(ctx):
            a = yield ctx.spawn(worker)
            b = yield ctx.spawn(worker)
            yield ctx.join(a)
            yield ctx.join(b)

        program = Program("oracle", main, initial_memory={"n": 0})
        result = systematic_search(program, preemption_bound=1, oracle=oracle)
        assert result.found_failure
        assert ("wrong_output", "n != 2") in result.failure_signatures

    def test_every_schedule_is_distinct(self):
        # DFS must never re-run an identical schedule.
        seen = set()

        def oracle(trace):
            key = tuple(trace.schedule)
            assert key not in seen, "schedule explored twice"
            seen.add(key)
            return None

        systematic_search(
            order_violation_program(), preemption_bound=2, oracle=oracle
        )
        assert len(seen) >= 3
