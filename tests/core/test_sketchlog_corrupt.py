"""Corrupt-input matrix for the sketch-log codec.

Every damaged artifact must surface as :class:`SketchFormatError` — the
named, actionable error ``pres doctor`` routes on — never as a raw
``zlib.error`` or ``struct.error`` escaping from the decoder.  Also pins
the epoch extensions: trailing garbage is distinguishable from
truncation, epoch-marked logs round-trip byte-identically, and plain
logs keep emitting the v1 wire format.
"""

import zlib

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.sketches import SketchEntry, SketchKind
from repro.core.sketchlog import SketchLog
from repro.errors import SketchFormatError
from repro.sim.ops import OpKind


def make_log(entries, sketch=SketchKind.SYNC, **fields):
    log = SketchLog(sketch=sketch)
    for tid, kind, key in entries:
        log.append(SketchEntry(tid=tid, kind=kind, key=key))
    for name, value in fields.items():
        setattr(log, name, value)
    return log


SAMPLE = [
    (1, OpKind.LOCK, "m"),
    (2, OpKind.UNLOCK, "m"),
    (1, OpKind.SYSCALL, ("send", "ch")),
    (3, OpKind.BASIC_BLOCK, "loop.head"),
    (1, OpKind.WRITE, ("buf", 3)),
    (0, OpKind.SPAWN, None),
]


class TestCorruptMatrix:
    """One test per damage mode; each must raise SketchFormatError."""

    def test_truncated_header(self):
        data = make_log(SAMPLE).to_bytes()
        for cut in range(1, 12):
            with pytest.raises(SketchFormatError):
                SketchLog.from_bytes(data[:cut])

    def test_truncated_entries(self):
        data = make_log(SAMPLE).to_bytes()
        with pytest.raises(SketchFormatError):
            SketchLog.from_bytes(data[:-3])

    def test_bad_magic(self):
        with pytest.raises(SketchFormatError, match="magic"):
            SketchLog.from_bytes(b"NOPE" + b"\x00" * 32)

    def test_unknown_version(self):
        data = bytearray(make_log(SAMPLE).to_bytes())
        data[4] = 99
        with pytest.raises(SketchFormatError, match="version"):
            SketchLog.from_bytes(bytes(data))

    def test_short_compressed_payload(self):
        # Shorter than even the 4-byte magic: the explicit length check,
        # not an IndexError or a zlib surprise.
        for size in range(4):
            with pytest.raises(SketchFormatError, match="too short"):
                SketchLog.from_bytes_compressed(b"PRE"[:size])

    def test_corrupt_compressed_body_is_not_zlib_error(self):
        data = bytearray(make_log(SAMPLE).to_bytes_compressed())
        data[10] ^= 0xFF
        try:
            SketchLog.from_bytes_compressed(bytes(data))
        except SketchFormatError:
            pass  # the only acceptable failure type
        except zlib.error as exc:  # pragma: no cover - the regression
            pytest.fail(f"raw zlib.error escaped the codec: {exc}")

    def test_trailing_garbage_rejected_and_named(self):
        data = make_log(SAMPLE).to_bytes()
        with pytest.raises(SketchFormatError, match="trailing garbage"):
            SketchLog.from_bytes(data + b"\x00\x01\x02")

    def test_trailing_garbage_distinct_from_truncation(self):
        # `pres doctor` tells the two damage shapes apart by message:
        # truncation points at what is missing, garbage at what is extra.
        data = make_log(SAMPLE).to_bytes()
        with pytest.raises(SketchFormatError) as extra:
            SketchLog.from_bytes(data + b"\xff")
        with pytest.raises(SketchFormatError) as missing:
            SketchLog.from_bytes(data[:-2])
        assert "trailing garbage" in str(extra.value)
        assert "trailing garbage" not in str(missing.value)

    def test_truncated_epoch_block(self):
        log = make_log(SAMPLE, epoch_starts=[0, 2, 4], truncated_entries=7,
                       truncated_epochs=2)
        data = log.to_bytes()
        # Cut inside the epoch block (it follows the 12-byte header).
        with pytest.raises(SketchFormatError):
            SketchLog.from_bytes(data[:14])

    def test_invalid_epoch_structure_rejected(self):
        log = make_log(SAMPLE, epoch_starts=[0, 4, 2])  # not increasing
        with pytest.raises(SketchFormatError, match="epoch"):
            SketchLog.from_bytes(log.to_bytes())

    def test_corrupt_json_epochs_rejected(self):
        log = make_log(SAMPLE, epoch_starts=[0, 3], truncated_entries=5,
                       truncated_epochs=1)
        text = log.to_json().replace('"starts": [0, 3]', '"starts": [3, 0]')
        with pytest.raises(SketchFormatError):
            SketchLog.from_json(text)


entry_strategy = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.sampled_from([OpKind.LOCK, OpKind.UNLOCK, OpKind.READ, OpKind.WRITE,
                     OpKind.SPAWN, OpKind.BASIC_BLOCK]),
    st.text(alphabet="abcxyz", min_size=1, max_size=4),
)


class TestEpochRoundTrip:
    @given(
        entries=st.lists(entry_strategy, min_size=1, max_size=12),
        truncated=st.integers(min_value=0, max_value=50),
        data=st.data(),
    )
    def test_epoch_marked_logs_reserialize_byte_identically(
        self, entries, truncated, data
    ):
        n = len(entries)
        extra = data.draw(
            st.lists(st.integers(min_value=1, max_value=n), max_size=4)
        )
        starts = sorted(set([0] + extra))
        # A lone [0] with nothing truncated canonicalizes to the plain
        # v1 form; the epoch property is about *marked* logs.
        assume(truncated > 0 or len(starts) > 1)
        log = make_log(entries, epoch_starts=starts,
                       truncated_entries=truncated,
                       truncated_epochs=1 if truncated else 0)
        wire = log.to_bytes()
        restored = SketchLog.from_bytes(wire)
        assert restored.entries == log.entries
        assert restored.epoch_starts == log.epoch_starts
        assert restored.truncated_entries == log.truncated_entries
        assert restored.truncated_epochs == log.truncated_epochs
        # The byte-identity contract: decode(encode(x)) re-encodes to
        # the same bytes, for binary, compressed, and JSON paths.
        assert restored.to_bytes() == wire
        assert (
            SketchLog.from_bytes_compressed(log.to_bytes_compressed())
            .to_bytes_compressed() == log.to_bytes_compressed()
        )
        assert SketchLog.from_json(log.to_json()).to_json() == log.to_json()

    @given(entries=st.lists(entry_strategy, max_size=12))
    def test_plain_logs_keep_the_v1_wire_format(self, entries):
        log = make_log(entries)
        data = log.to_bytes()
        assert data[4] == 1  # version byte: no epoch block, no v2 bump
        assert SketchLog.from_bytes(data).to_bytes() == data

    def test_epoch_marked_log_uses_v2(self):
        log = make_log(SAMPLE, epoch_starts=[0, 2], truncated_entries=3,
                       truncated_epochs=1)
        assert log.to_bytes()[4] == 2

    def test_v1_log_loads_as_one_epoch(self):
        restored = SketchLog.from_bytes(make_log(SAMPLE).to_bytes())
        assert restored.epoch_starts == []
        assert restored.epoch_count == 1
        assert restored.epoch_spans() == [(0, len(SAMPLE))]
        assert not restored.epoch_marked()
