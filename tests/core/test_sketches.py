"""Tests for sketch mechanisms and visibility."""

import pytest

from repro.core.sketches import (
    SKETCH_ORDER,
    SketchEntry,
    SketchKind,
    entry_for_op,
    event_visible,
    op_key,
    op_visible,
    parse_sketch_kind,
    visible_kinds,
)
from repro.sim.events import Event
from repro.sim.ops import Op, OpKind
from repro.sim.program import ThreadContext


@pytest.fixture
def ctx():
    return ThreadContext(1)


class TestSpectrum:
    def test_order_is_none_to_rw(self):
        assert SKETCH_ORDER[0] is SketchKind.NONE
        assert SKETCH_ORDER[-1] is SketchKind.RW

    def test_mechanisms_are_cumulative(self):
        for lighter, heavier in zip(SKETCH_ORDER, SKETCH_ORDER[1:]):
            assert visible_kinds(lighter) < visible_kinds(heavier)
            assert heavier.includes(lighter)
            assert not lighter.includes(heavier)

    def test_none_records_nothing(self):
        assert visible_kinds(SketchKind.NONE) == frozenset()

    def test_level_matches_order(self):
        for i, kind in enumerate(SKETCH_ORDER):
            assert kind.level == i


class TestVisibility:
    @pytest.mark.parametrize(
        "sketch, kind, visible",
        [
            (SketchKind.SYNC, OpKind.LOCK, True),
            (SketchKind.SYNC, OpKind.SPAWN, True),
            (SketchKind.SYNC, OpKind.SYSCALL, False),
            (SketchKind.SYNC, OpKind.READ, False),
            (SketchKind.SYS, OpKind.SYSCALL, True),
            (SketchKind.SYS, OpKind.FUNC_ENTER, False),
            (SketchKind.FUNC, OpKind.FUNC_ENTER, True),
            (SketchKind.FUNC, OpKind.BASIC_BLOCK, False),
            (SketchKind.BB, OpKind.BASIC_BLOCK, True),
            (SketchKind.BB, OpKind.WRITE, False),
            (SketchKind.RW, OpKind.WRITE, True),
            (SketchKind.RW, OpKind.FREE, True),
            (SketchKind.RW, OpKind.LOCAL, False),
            (SketchKind.RW, OpKind.YIELD, False),
        ],
    )
    def test_kind_visibility(self, sketch, kind, visible):
        op = Op(kind)
        assert op_visible(sketch, op) is visible
        event = Event(gidx=0, tid=1, kind=kind)
        assert event_visible(sketch, event) is visible

    def test_local_invisible_everywhere(self, ctx):
        for sketch in SKETCH_ORDER:
            assert not op_visible(sketch, ctx.local())


class TestKeys:
    def test_sync_key_is_object(self, ctx):
        assert op_key(OpKind.LOCK, ctx.lock("m")) == "m"

    def test_syscall_key_is_name_and_channel(self, ctx):
        assert op_key(OpKind.SYSCALL, ctx.syscall("send", "ch", "payload")) == (
            "send",
            "ch",
        )

    def test_syscall_key_without_args(self, ctx):
        assert op_key(OpKind.SYSCALL, ctx.now()) == ("now", None)

    def test_syscall_key_ignores_non_scalar_first_arg(self, ctx):
        op = ctx.syscall("write_stdout", ("tuple", "payload"))
        assert op_key(OpKind.SYSCALL, op) == ("write_stdout", None)

    def test_func_key_is_name(self):
        assert op_key(OpKind.FUNC_ENTER, Op(OpKind.FUNC_ENTER, name="f")) == "f"

    def test_bb_key_is_label(self, ctx):
        assert op_key(OpKind.BASIC_BLOCK, ctx.bb("loop")) == "loop"

    def test_memory_key_is_address(self, ctx):
        assert op_key(OpKind.WRITE, ctx.write(("a", 1), 9)) == ("a", 1)


class TestEntries:
    def test_entry_matches_its_op(self, ctx):
        op = ctx.lock("m")
        entry = entry_for_op(1, op)
        assert entry.matches_op(1, op)

    def test_entry_rejects_wrong_thread(self, ctx):
        entry = entry_for_op(1, ctx.lock("m"))
        assert not entry.matches_op(2, ctx.lock("m"))

    def test_entry_rejects_wrong_object(self, ctx):
        entry = entry_for_op(1, ctx.lock("m"))
        assert not entry.matches_op(1, ctx.lock("other"))

    def test_entry_rejects_wrong_kind(self, ctx):
        entry = entry_for_op(1, ctx.lock("m"))
        assert not entry.matches_op(1, ctx.unlock("m"))

    def test_entry_from_event_round_trips(self, ctx):
        op = ctx.syscall("send", "ch", "x")
        event = Event.from_op(0, 1, 0, op)
        entry = SketchEntry.from_event(event)
        assert entry.matches_op(1, op)

    def test_describe(self, ctx):
        assert "lock" in entry_for_op(1, ctx.lock("m")).describe()


class TestParse:
    @pytest.mark.parametrize("name", ["none", "sync", "sys", "func", "bb", "rw"])
    def test_parse_valid(self, name):
        assert parse_sketch_kind(name).value == name

    def test_parse_is_case_insensitive(self):
        assert parse_sketch_kind("SYNC") is SketchKind.SYNC

    def test_parse_invalid_lists_options(self):
        with pytest.raises(ValueError, match="sync"):
            parse_sketch_kind("bogus")
