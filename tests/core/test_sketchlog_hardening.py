"""Hardening regressions for sketch-log serialization.

Entry keys that collide with the ``__t``/``__d`` encoding tags must
survive JSON round trips, and parse errors must carry the 1-based entry
number.
"""

import json

import pytest

from repro.core.sketches import SketchEntry, SketchKind
from repro.core.sketchlog import SketchLog, entry_from_record, entry_record
from repro.errors import SketchFormatError
from repro.sim.ops import OpKind

ADVERSARIAL_KEYS = [
    ("addr", 1),
    {"__t": [1]},
    {"__t": 1},
    {"__d": 7},
    {"__t": 1, "other": 2},
    {"__d": [["k", "v"]]},
    ((1, {"__t": [2]}),),
]


def _log_with_keys(keys):
    log = SketchLog(sketch=SketchKind.RW)
    for tid, key in enumerate(keys):
        log.append(SketchEntry(tid=tid, kind=OpKind.WRITE, key=key))
    return log


def test_adversarial_keys_round_trip_via_json():
    log = _log_with_keys(ADVERSARIAL_KEYS)
    back = SketchLog.from_json(log.to_json())
    assert back.entries == log.entries


def test_entry_record_round_trips_adversarial_keys():
    for key in ADVERSARIAL_KEYS:
        entry = SketchEntry(tid=2, kind=OpKind.LOCK, key=key)
        assert entry_from_record(entry_record(entry)) == entry


def test_from_json_names_the_bad_entry_number():
    log = _log_with_keys([("a", 1), ("b", 2), ("c", 3)])
    payload = json.loads(log.to_json())
    payload["entries"][1] = ["oops"]
    with pytest.raises(SketchFormatError, match="entry 2"):
        SketchLog.from_json(json.dumps(payload))


def test_from_json_rejects_non_log_payloads():
    with pytest.raises(SketchFormatError):
        SketchLog.from_json("[]")
    with pytest.raises(SketchFormatError):
        SketchLog.from_json('{"sketch": "warp-core"}')


def test_entry_from_record_rejects_garbage():
    with pytest.raises(SketchFormatError):
        entry_from_record(["nope"])
    with pytest.raises(SketchFormatError):
        entry_from_record([1, "no-such-kind", None])
