"""Pickle round-trips for everything the process pool ships.

The parallel engine's workers reconstruct their session from a pickled
:class:`RecordedRun`; these tests pin down that the artifacts survive the
trip *and still replay identically* — structural equality alone would
miss a generator or closure smuggled into the payload.
"""

from __future__ import annotations

import pickle

import pytest

from tests.conftest import counter_program, run_program

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.constraints import EventRef, OrderConstraint, canonical_order
from repro.core.parallel import AttemptContext, run_attempt
from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig


def _recorded(bug_id: str, sketch: SketchKind = SketchKind.SYNC):
    spec = get_bug(bug_id)
    seed = find_failing_seed(spec)
    assert seed is not None
    return record(
        spec.make_program(),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


class TestRecordedRunPickle:
    @pytest.mark.parametrize("bug_id", ["pbzip2-order-free", "radix-order-rank"])
    def test_round_trip_preserves_the_session(self, bug_id):
        recorded = _recorded(bug_id)
        clone = pickle.loads(pickle.dumps(recorded))
        assert clone.program.name == recorded.program.name
        assert clone.sketch is recorded.sketch
        assert len(clone.log) == len(recorded.log)
        assert clone.log.fingerprint() == recorded.log.fingerprint()
        assert clone.failure.matches(recorded.failure)
        assert clone.stdout == recorded.stdout

    def test_round_trip_replays_identically(self):
        recorded = _recorded("pbzip2-order-free")
        clone = pickle.loads(pickle.dumps(recorded))
        original_trace, original_matched = run_attempt(
            AttemptContext(recorded=recorded), frozenset(), seed=5
        )
        cloned_trace, cloned_matched = run_attempt(
            AttemptContext(recorded=clone), frozenset(), seed=5
        )
        assert cloned_matched == original_matched
        assert cloned_trace.schedule == original_trace.schedule
        assert cloned_trace.steps == original_trace.steps


class TestTracePickle:
    def test_round_trip(self):
        trace = run_program(counter_program(), seed=1)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.schedule == trace.schedule
        assert clone.failed == trace.failed
        assert clone.stdout == trace.stdout
        assert [e.signature() for e in clone.events] == [
            e.signature() for e in trace.events
        ]


class TestConstraintSetPickle:
    def test_round_trip_and_canonical_order(self):
        constraints = frozenset(
            {
                OrderConstraint(
                    before=EventRef(tid=1, family="mem", key=("buf", 3), occurrence=2),
                    after=EventRef(tid=2, family="mem", key="counter", occurrence=1),
                ),
                OrderConstraint(
                    before=EventRef(tid=2, family="lock", key="m", occurrence=1),
                    after=EventRef(tid=1, family="lock", key="m", occurrence=2),
                ),
            }
        )
        clone = pickle.loads(pickle.dumps(constraints))
        assert clone == constraints
        assert canonical_order(clone) == canonical_order(constraints)
