"""Tests for feedback generation from failed attempts."""

import pytest

from repro.core.constraints import ConstraintSet, OrderConstraint
from repro.core.feedback import (
    AttemptCache,
    FeedbackDB,
    FeedbackGenerator,
    _inverse,
)
from repro.core.sketches import SketchKind
from repro.sim.ops import OpKind

from tests.conftest import (
    counter_program,
    find_seed,
    order_violation_program,
    run_program,
)

EMPTY: ConstraintSet = frozenset()


def _clean_ov_trace():
    program = order_violation_program()
    return run_program(program, find_seed(program, want_failure=False))


class TestCandidateGeneration:
    def test_races_become_flip_candidates(self):
        trace = _clean_ov_trace()
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        candidates = generator.candidates(trace, EMPTY)
        assert candidates
        assert all(len(c.constraints) == 1 for c in candidates)

    def test_flip_reverses_observed_order(self):
        trace = _clean_ov_trace()
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        data_flips = [
            c
            for c in generator.candidates(trace, EMPTY)
            for constraint in c.constraints
            if constraint.before.key == "data" or constraint.after.key == "data"
        ]
        assert data_flips
        constraint = next(iter(data_flips[0].constraints))
        # whichever side executed second in the trace becomes 'before'
        assert constraint.before.tid != constraint.after.tid

    def test_race_free_trace_yields_no_candidates(self):
        trace = run_program(counter_program(locked=True), seed=1)
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        assert generator.candidates(trace, EMPTY) == []

    def test_candidates_extend_current_set(self):
        trace = run_program(counter_program(locked=False), seed=1)
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        base = generator.candidates(trace, EMPTY)
        assert base
        existing = base[0].constraints
        deeper = generator.candidates(trace, existing)
        assert all(existing < c.constraints for c in deeper)
        assert all(len(c.constraints) == 2 for c in deeper)

    def test_inverse_of_current_not_offered(self):
        trace = run_program(counter_program(locked=False), seed=1)
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        base = generator.candidates(trace, EMPTY)
        constraint = next(iter(base[0].constraints))
        inverse_set = frozenset({_inverse(constraint)})
        deeper = generator.candidates(trace, inverse_set)
        for candidate in deeper:
            assert constraint not in candidate.constraints

    def test_depth_limit_stops_generation(self):
        trace = run_program(counter_program(locked=False), seed=1)
        generator = FeedbackGenerator(sketch=SketchKind.SYNC, max_constraint_depth=1)
        base = generator.candidates(trace, EMPTY)
        assert generator.candidates(trace, base[0].constraints) == []

    def test_candidate_cap_respected(self):
        trace = run_program(counter_program(nworkers=3, iters=5), seed=2)
        generator = FeedbackGenerator(
            sketch=SketchKind.SYNC, max_candidates_per_attempt=5
        )
        assert len(generator.candidates(trace, EMPTY)) <= 5

    def test_read_shaped_races_ranked_first(self):
        trace = run_program(counter_program(nworkers=2, iters=4), seed=2)
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        candidates = generator.candidates(trace, EMPTY)
        shapes = [c.shape for c in candidates]
        assert shapes == sorted(shapes)


class TestLockLifting:
    def test_lock_protected_race_dropped_under_sync_sketch(self):
        # Accesses under a common mutex are pinned by a SYNC sketch;
        # flipping them must not be offered.
        trace = run_program(counter_program(locked=True), seed=1)
        generator = FeedbackGenerator(sketch=SketchKind.SYNC)
        assert generator.candidates(trace, EMPTY) == []

    def test_lock_protected_race_lifted_under_none_sketch(self):
        trace = run_program(counter_program(locked=True), seed=1)
        generator = FeedbackGenerator(sketch=SketchKind.NONE)
        candidates = generator.candidates(trace, EMPTY)
        assert candidates
        lock_flips = [
            constraint
            for candidate in candidates
            for constraint in candidate.constraints
            if constraint.before.family == "lock"
        ]
        assert lock_flips
        for constraint in lock_flips:
            assert constraint.after.family == "lock"
            assert constraint.before.key == constraint.after.key == "m"


class TestFeedbackDB:
    def test_tried_tracks_constraints_and_seed(self):
        db = FeedbackDB()
        constraints = frozenset(
            {
                OrderConstraint(
                    before=_ref(1, "x", 1),
                    after=_ref(2, "x", 1),
                )
            }
        )
        assert not db.tried(constraints, 0)
        db.mark_tried(constraints, 0)
        assert db.tried(constraints, 0)
        assert not db.tried(constraints, 1)  # fresh seed, fresh attempt

    def test_record_trace_detects_duplicates(self):
        db = FeedbackDB()
        trace = run_program(counter_program(), seed=3)
        same = run_program(counter_program(), seed=3)
        other = run_program(counter_program(), seed=4)
        assert db.record_trace(trace) is True
        assert db.record_trace(same) is False
        assert db.duplicate_traces == 1
        assert db.record_trace(other) is True


def _ref(tid, key, occ):
    from repro.core.constraints import EventRef

    return EventRef(tid, "mem", key, occ)


class TestBoundedAttemptCache:
    """The ``max_entries`` bound trades cache hits for live replays —
    and, because attempts are pure, changes nothing else."""

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            AttemptCache(max_entries=0)

    def test_unbounded_cache_never_evicts(self):
        cache = AttemptCache()
        for n in range(100):
            cache.put(("key", n), n)
        assert len(cache) == 100
        assert cache.evictions == 0

    def test_evicts_least_recently_used(self):
        cache = AttemptCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refreshes "a"
        cache.put(("c",), 3)  # evicts "b", the least recently used
        assert cache.evictions == 1
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_reput_refreshes_recency(self):
        cache = AttemptCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 1)  # re-put: "a" becomes the most recent
        cache.put(("c",), 3)  # so this evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1

    def test_tiny_bound_cannot_change_exploration_results(self):
        from repro.apps import get_bug
        from repro.bench.seeds import find_failing_seed
        from repro.core.explorer import ExplorerConfig
        from repro.core.recorder import record
        from repro.core.reproducer import reproduce
        from repro.sim import MachineConfig

        spec = get_bug("mysql-atom-log")  # ~19 attempts: the bound bites
        seed = find_failing_seed(spec, ncpus=4)
        recorded = record(
            spec.make_program(), sketch=SketchKind.SYNC, seed=seed,
            config=MachineConfig(ncpus=4), oracle=spec.oracle,
        )
        config = ExplorerConfig(max_attempts=40)

        def keys(report):
            return [
                (r.outcome, r.base_seed, r.n_constraints)
                for r in report.records
            ]

        free = reproduce(recorded, config, cache=AttemptCache())
        bounded_cache = AttemptCache(max_entries=2)
        bounded = reproduce(recorded, config, cache=bounded_cache)
        assert keys(bounded) == keys(free)
        assert bounded.success == free.success
        assert bounded.attempts == free.attempts
        assert bounded.winning_constraints == free.winning_constraints
        assert bounded_cache.evictions > 0

        # A rewalk under the bound replays what was evicted — live —
        # and still reports the identical exploration.
        rewalk = reproduce(recorded, config, cache=bounded_cache)
        assert keys(rewalk) == keys(free)
        assert rewalk.success == free.success
        assert rewalk.winning_constraints == free.winning_constraints
