"""Tests for root-cause diagnosis."""

import pytest

from repro.core.diagnose import diagnose
from repro.sim.failures import FailureKind

from tests.conftest import (
    counter_program,
    deadlock_program,
    find_seed,
    order_violation_program,
    run_program,
)


def failing_trace(program):
    return run_program(program, find_seed(program))


def _lost_update_program():
    """Unlocked increments + end-of-run audit: the failing trace is a
    complete execution, so all race evidence is present in it."""
    from repro.sim import Program

    def worker(ctx, n):
        for _ in range(n):
            value = yield ctx.read("hits")
            yield ctx.local(1)
            yield ctx.write("hits", value + 1)

    def main(ctx):
        a = yield ctx.spawn(worker, 3)
        b = yield ctx.spawn(worker, 3)
        yield ctx.join(a)
        yield ctx.join(b)
        hits = yield ctx.read("hits")
        yield ctx.check(hits == 6, "lost update on hits")

    return Program("lostupdate", main, initial_memory={"hits": 0})


class TestDiagnose:
    def test_requires_a_failure(self):
        trace = run_program(counter_program(), 0)
        assert not trace.failed
        with pytest.raises(ValueError, match="did not fail"):
            diagnose(trace)

    def test_atomicity_violation_diagnosis(self):
        trace = failing_trace(_lost_update_program())
        report = diagnose(trace)
        assert report.failure.kind is FailureKind.ASSERTION
        # the root-cause race on "hits" is among the top suspects
        top_addrs = {race.addr for race in report.suspect_races[:3]}
        assert "hits" in top_addrs
        assert "hits" in report.unprotected_addresses
        assert report.involved_tids == (trace.failure.tid,)

    def test_truncated_failing_trace_may_lack_race_evidence(self):
        # An order violation that crashes *before* the other side of the
        # race executes leaves no race pair in its own trace — diagnosis
        # still reports the failure and tails, just without suspects.
        trace = failing_trace(order_violation_program())
        report = diagnose(trace)
        assert report.failure.kind is FailureKind.ASSERTION
        assert report.thread_tails
        assert "failure:" in report.render()

    def test_deadlock_diagnosis_shows_cycle(self):
        trace = failing_trace(deadlock_program())
        report = diagnose(trace)
        assert report.failure.kind is FailureKind.DEADLOCK
        assert len(report.deadlock_hops) == 2
        held = " ".join(report.deadlock_hops)
        assert "'A'" in held and "'B'" in held

    def test_thread_tails_cover_involved_threads(self):
        trace = failing_trace(deadlock_program())
        report = diagnose(trace)
        tail_tids = {tid for tid, _ in report.thread_tails}
        assert tail_tids == set(trace.failure.involved_tids)
        for _, tail in report.thread_tails:
            assert 1 <= len(tail) <= 4

    def test_render_is_readable(self):
        trace = failing_trace(_lost_update_program())
        text = diagnose(trace).render()
        assert "failure:" in text
        assert "suspect races" in text
        assert "final operations" in text

    def test_races_ranked_by_proximity_to_failure(self):
        trace = failing_trace(_lost_update_program())
        report = diagnose(trace)
        involved = set(report.involved_tids)
        anchor = report.failure.gidx

        def key(race):
            touches = int(
                race.first.tid in involved or race.second.tid in involved
            )
            return (-touches, abs(anchor - race.second.gidx))

        keys = [key(race) for race in report.suspect_races]
        assert keys == sorted(keys)

    def test_diagnose_on_app_bug(self):
        from repro.apps import get_bug

        spec = get_bug("pbzip2-order-free")
        program = spec.make_program()
        trace = failing_trace(program)
        report = diagnose(trace)
        assert report.failure.kind is FailureKind.CRASH
        assert any(
            race.first.kind.value == "free" or race.second.kind.value == "free"
            for race in report.suspect_races
        )
