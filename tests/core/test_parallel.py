"""The parallel exploration engine's determinism and cache contracts.

The load-bearing property: the exploration schedule is a function of
``batch_size`` only, never of ``jobs`` — attempt counts published by the
benchmarks cannot depend on how many cores the host happened to have.
"""

from __future__ import annotations

import pytest

from tests.conftest import find_seed, order_violation_program

from repro.apps import all_bugs, get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.feedback import AttemptCache
from repro.core.recorder import record
from repro.core.reproducer import Reproducer, reproduce
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig, Program

BUG_IDS = [spec.bug_id for spec in all_bugs()]


def _recorded(bug_id: str, sketch: SketchKind = SketchKind.SYNC, ncpus: int = 4):
    spec = get_bug(bug_id)
    seed = find_failing_seed(spec, ncpus=ncpus)
    assert seed is not None, f"{bug_id}: no failing seed"
    return record(
        spec.make_program(),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=ncpus),
        oracle=spec.oracle,
    )


def _record_keys(report):
    return [(r.outcome, r.base_seed, r.n_constraints) for r in report.records]


class TestJobsEquivalence:
    """jobs=1 and jobs=4 must report identical explorations."""

    @pytest.mark.parametrize("bug_id", BUG_IDS)
    def test_pool_matches_inline_across_suite(self, bug_id):
        recorded = _recorded(bug_id)
        config = ExplorerConfig(max_attempts=25, batch_size=8)
        serial = reproduce(recorded, config, jobs=1)
        pooled = reproduce(recorded, config, jobs=4)
        assert pooled.success == serial.success
        assert pooled.attempts == serial.attempts
        assert pooled.winning_constraints == serial.winning_constraints
        assert _record_keys(pooled) == _record_keys(serial)
        if serial.success:
            assert pooled.complete_log.schedule == serial.complete_log.schedule

    def test_random_ablation_is_jobs_and_batch_invariant(self):
        recorded = _recorded("openldap-deadlock")
        serial = reproduce(
            recorded, ExplorerConfig(max_attempts=30), use_feedback=False
        )
        batched = reproduce(
            recorded, ExplorerConfig(max_attempts=30, batch_size=6),
            use_feedback=False, jobs=1,
        )
        pooled = reproduce(
            recorded, ExplorerConfig(max_attempts=30, batch_size=6),
            use_feedback=False, jobs=3,
        )
        assert _record_keys(batched) == _record_keys(serial)
        assert _record_keys(pooled) == _record_keys(serial)
        assert pooled.success == serial.success


class TestSerialDegeneration:
    """batch_size=1 is exactly the serial FeedbackExplorer's schedule."""

    @pytest.mark.parametrize(
        "bug_id", ["pbzip2-order-free", "openldap-deadlock", "fft-order-sync"]
    )
    def test_batch_of_one_matches_serial_explorer(self, bug_id):
        recorded = _recorded(bug_id)
        serial = reproduce(recorded, ExplorerConfig(max_attempts=40))
        # A cache forces the ParallelExplorer path; with jobs=1 and no
        # explicit batch_size it runs batches of exactly one.
        engine = reproduce(
            recorded, ExplorerConfig(max_attempts=40), cache=AttemptCache()
        )
        assert engine.success == serial.success
        assert engine.attempts == serial.attempts
        assert engine.winning_constraints == serial.winning_constraints
        assert _record_keys(engine) == _record_keys(serial)
        if serial.success:
            assert engine.complete_log.schedule == serial.complete_log.schedule


class TestAttemptCache:
    def test_rewalk_is_answered_from_the_cache(self):
        recorded = _recorded("pbzip2-order-free")
        cache = AttemptCache()
        first = reproduce(recorded, ExplorerConfig(max_attempts=40), cache=cache)
        assert cache.hits == 0 and len(cache) == first.attempts
        second = reproduce(recorded, ExplorerConfig(max_attempts=40), cache=cache)
        assert second.cache_hits == second.attempts
        assert second.success == first.success
        assert second.attempts == first.attempts
        assert second.winning_constraints == first.winning_constraints

    def test_cache_keys_separate_policies(self):
        recorded = _recorded("pbzip2-order-free")
        cache = AttemptCache()
        reproduce(recorded, ExplorerConfig(max_attempts=10), cache=cache)
        # Different base policy must not reuse the memoized outcomes.
        reproduce(
            recorded, ExplorerConfig(max_attempts=10), base_policy="pct",
            cache=cache,
        )
        assert cache.hits == 0


def _local_order_violation() -> Program:
    """An order-violation program whose bodies defeat pickling (local defs)."""

    def producer(ctx):
        yield ctx.local(2)
        yield ctx.write("data", 42)

    def consumer(ctx):
        yield ctx.local(1)
        value = yield ctx.read("data")
        yield ctx.check(value == 42, "read unpublished data")

    def main(ctx):
        p = yield ctx.spawn(producer)
        c = yield ctx.spawn(consumer)
        yield ctx.join(p)
        yield ctx.join(c)

    return Program(name="local-ov", main=main, initial_memory={"data": 0})


class TestPoolFallback:
    def test_unpicklable_session_runs_inline(self):
        program = _local_order_violation()
        seed = find_seed(program)
        recorded = record(
            program, sketch=SketchKind.SYNC, seed=seed,
            config=MachineConfig(ncpus=4),
        )
        reproducer = Reproducer(recorded, ExplorerConfig(max_attempts=40, jobs=4))
        report = reproducer.run()
        assert reproducer.explorer.pool_disabled_reason is not None
        assert report.success

    def test_fallback_matches_picklable_run(self):
        # The inline fallback must still honor the batch-merge semantics:
        # same results as the reference (picklable, pooled) exploration.
        local = _local_order_violation()
        reference = order_violation_program()
        seed = find_seed(reference)
        assert find_seed(local) == seed  # same program, different packaging
        config = ExplorerConfig(max_attempts=40, batch_size=4)
        reports = []
        for program, jobs in ((reference, 2), (local, 2)):
            recorded = record(
                program, sketch=SketchKind.SYNC, seed=seed,
                config=MachineConfig(ncpus=4),
            )
            reports.append(reproduce(recorded, config, jobs=jobs))
        assert _record_keys(reports[0]) == _record_keys(reports[1])
        assert reports[0].success == reports[1].success
