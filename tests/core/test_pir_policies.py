"""Tests for PIR base policies (random vs PCT choosers)."""

import pytest

from repro.core.pir import PCTChooser, PIRScheduler, RandomChooser, make_chooser
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.explorer import ExplorerConfig
from repro.core.sketches import SketchKind
from repro.sim import Machine, MachineConfig

from tests.conftest import counter_program, find_seed, order_violation_program


class TestChoosers:
    def test_make_chooser_dispatch(self):
        assert isinstance(make_chooser("random", 0), RandomChooser)
        assert isinstance(make_chooser("pct", 0), PCTChooser)
        with pytest.raises(ValueError, match="unknown base policy"):
            make_chooser("magic", 0)

    def test_random_chooser_deterministic(self):
        a, b = RandomChooser(5), RandomChooser(5)
        a.restart()
        b.restart()
        assert [a.choose([1, 2, 3]) for _ in range(20)] == [
            b.choose([1, 2, 3]) for _ in range(20)
        ]

    def test_pct_chooser_prefers_high_priority(self):
        chooser = PCTChooser(seed=1, depth=1)
        chooser.restart()
        first = chooser.choose([1, 2, 3])
        # with no change points, the same winner repeats while available
        assert all(chooser.choose([1, 2, 3]) == first for _ in range(10))

    def test_pct_chooser_change_point_demotes(self):
        chooser = PCTChooser(seed=3, depth=4, max_steps_hint=20)
        chooser.restart()
        picks = [chooser.choose([1, 2]) for _ in range(20)]
        assert len(set(picks)) == 2  # demotions force a switch


class TestPolicyEndToEnd:
    def test_both_policies_replay_the_sketch_faithfully(self):
        program = counter_program(nworkers=3, iters=4)
        recorded = record(program, SketchKind.SYNC, seed=9)
        for policy in ("random", "pct"):
            scheduler = PIRScheduler(
                recorded.log, (), base_seed=2, base_policy=policy
            )
            trace = Machine(program, scheduler, MachineConfig(ncpus=4)).run()
            assert not trace.diverged, (policy, trace.divergence)

    def test_policies_explore_different_schedules(self):
        program = counter_program(nworkers=3, iters=4)
        recorded = record(program, SketchKind.SYNC, seed=9)
        traces = {}
        for policy in ("random", "pct"):
            scheduler = PIRScheduler(
                recorded.log, (), base_seed=2, base_policy=policy
            )
            traces[policy] = Machine(
                program, scheduler, MachineConfig(ncpus=4)
            ).run()
        assert traces["random"].schedule != traces["pct"].schedule

    def test_pct_reproduction_end_to_end(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.SYNC, seed=seed)
        report = reproduce(
            recorded,
            ExplorerConfig(max_attempts=100),
            use_feedback=False,
            base_policy="pct",
        )
        assert report.success
