"""Rolling-epoch recording and last-epoch in-situ replay.

Pins the contracts the epoch machinery rests on: boundaries are a pure
function of the schedule (same seed, same boundaries), the retention
window truncates deterministically on a boundary, explicit
``ctx.epoch_barrier()`` markers cut where the application asked, the
epoch walk reproduces windowed recordings without regressing plain
reproduction, and the full-history fallback rung exists exactly when
nothing was truncated.
"""

import pytest

from repro.core.epochs import (
    EpochConfig,
    base_tag,
    suffix_log,
)
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import (
    epoch_replay_ladder,
    render_report,
    reproduce,
    reproduce_windowed,
)
from repro.core.sketches import SketchKind
from repro.errors import SimUsageError
from repro.sim import MachineConfig, Program

from tests.conftest import counter_program, find_seed, order_violation_program


def epoch_record(program, steps, window, seed=0, **kwargs):
    return record(
        program,
        sketch=SketchKind.SYNC,
        seed=seed,
        epochs=EpochConfig(steps=steps, window=window),
        **kwargs,
    )


class TestEpochConfig:
    def test_negative_steps_rejected(self):
        with pytest.raises(SimUsageError, match="epoch-steps"):
            EpochConfig(steps=-1).validate()

    def test_negative_window_rejected(self):
        with pytest.raises(SimUsageError, match="epoch-window"):
            EpochConfig(steps=10, window=-2).validate()

    def test_zero_steps_disables_epochs(self):
        assert not EpochConfig(steps=0, window=5).enabled
        recorded = record(
            counter_program(), sketch=SketchKind.SYNC, seed=3,
            epochs=EpochConfig(steps=0, window=5),
        )
        assert recorded.epochs is None


class TestBoundaryDeterminism:
    def test_same_seed_same_boundaries(self):
        a = epoch_record(counter_program(nworkers=3, iters=6), 15, 0, seed=7)
        b = epoch_record(counter_program(nworkers=3, iters=6), 15, 0, seed=7)
        assert a.epochs is not None
        assert [(x.epoch, x.step, x.entry_index) for x in a.epochs.boundaries] \
            == [(x.epoch, x.step, x.entry_index) for x in b.epochs.boundaries]
        assert a.log.to_bytes() == b.log.to_bytes()

    def test_epoch_recording_does_not_perturb_the_log(self):
        # Cutting boundaries (and capturing snapshots) must not change
        # which events execute or which entries are sketched.
        plain = record(counter_program(), sketch=SketchKind.SYNC, seed=5)
        epoched = epoch_record(counter_program(), 10, 0, seed=5)
        assert epoched.log.entries == plain.log.entries

    def test_boundary_pitch_respected(self):
        recorded = epoch_record(counter_program(nworkers=3, iters=6), 12, 0)
        boundaries = recorded.epochs.boundaries
        assert boundaries, "run too short to cut a single boundary"
        previous = 0
        for boundary in boundaries:
            assert boundary.step - previous >= 12
            previous = boundary.step


class TestTruncation:
    def make(self, window):
        return epoch_record(
            counter_program(nworkers=3, iters=6), 10, window, seed=4
        )

    def test_window_arithmetic(self):
        full = self.make(0)
        windowed = self.make(2)
        timeline = windowed.epochs
        assert timeline.total_epochs == full.epochs.total_epochs
        assert timeline.truncated_epochs == max(0, timeline.total_epochs - 2)
        assert timeline.retained_epochs == min(2, timeline.total_epochs)
        assert timeline.truncated_entries + len(windowed.log) == len(full.log)

    def test_cut_falls_on_a_boundary(self):
        full = self.make(0)
        windowed = self.make(2)
        cut = windowed.epochs.truncated_entries
        assert cut in [b.entry_index for b in full.epochs.boundaries]
        # The retained log is exactly the suffix of the full log.
        assert windowed.log.entries == full.log.entries[cut:]

    def test_rolling_retention_bounds_snapshots(self):
        # An always-on recorder keeps at most `window` snapshots alive,
        # dropped *during* the run, not only at finalize.
        windowed = self.make(2)
        with_snapshot = [
            b for b in windowed.epochs.boundaries if b.snapshot is not None
        ]
        assert 1 <= len(with_snapshot) <= 2
        assert windowed.epochs.replay_bases()[0] is with_snapshot[-1]

    def test_window_zero_keeps_everything(self):
        full = self.make(0)
        assert full.epochs.truncated_entries == 0
        assert full.epochs.truncated_epochs == 0
        assert all(b.snapshot is not None for b in full.epochs.boundaries)


def _barrier_worker(ctx, n):
    for _ in range(n):
        value = yield ctx.read("counter")
        yield ctx.write("counter", value + 1)
        yield ctx.epoch_barrier()
    return n


def _barrier_main(ctx, n):
    tid = yield ctx.spawn(_barrier_worker, n)
    yield ctx.join(tid)


def barrier_program(n: int = 3) -> Program:
    return Program(
        name="barrier",
        main=_barrier_main,
        params={"n": n},
        initial_memory={"counter": 0},
    )


class TestExplicitBarrier:
    def test_barrier_cuts_explicit_boundaries(self):
        # Pitch far beyond the run length: every boundary comes from the
        # application's own epoch_barrier() markers.
        recorded = epoch_record(barrier_program(), 10_000, 0)
        boundaries = recorded.epochs.boundaries
        assert len(boundaries) == 3
        assert all(b.explicit for b in boundaries)

    def test_barrier_without_epochs_is_an_ordinary_syscall(self):
        # No EpochConfig: the marker is just a SYS-visible syscall entry.
        recorded = record(barrier_program(), sketch=SketchKind.SYS, seed=0)
        assert recorded.epochs is None
        assert any(
            "epoch_barrier" in str(entry.key) for entry in recorded.log
        )


class TestSuffixLog:
    def test_suffix_matches_boundary(self):
        recorded = epoch_record(counter_program(nworkers=3, iters=6), 10, 2)
        timeline = recorded.epochs
        boundary = timeline.replay_bases()[0]
        derived = suffix_log(
            recorded.log, timeline, boundary,
            program_name=recorded.program.name, seed=recorded.seed,
        )
        rel = boundary.entry_index - timeline.truncated_entries
        assert derived.entries == recorded.log.entries[rel:]
        assert derived.base_tag == base_tag(
            recorded.program.name, recorded.seed, boundary
        )

    def test_base_tag_separates_fingerprints(self):
        # An epoch suffix replays from a snapshot, not step 0: its cache
        # identity must never collide with a same-entries full log.
        recorded = epoch_record(counter_program(nworkers=3, iters=6), 10, 2)
        timeline = recorded.epochs
        boundary = timeline.replay_bases()[0]
        derived = suffix_log(
            recorded.log, timeline, boundary,
            program_name=recorded.program.name, seed=recorded.seed,
        )
        bare = suffix_log(
            recorded.log, timeline, boundary,
            program_name=recorded.program.name, seed=recorded.seed,
        )
        bare.base_tag = ""
        assert derived.fingerprint() != bare.fingerprint()

    def test_out_of_range_boundary_rejected(self):
        recorded = epoch_record(counter_program(nworkers=3, iters=6), 10, 2)
        timeline = recorded.epochs
        boundary = timeline.replay_bases()[0]
        import dataclasses as _dc
        bad = _dc.replace(boundary, entry_index=timeline.truncated_entries - 1)
        with pytest.raises(SimUsageError, match="outside"):
            suffix_log(
                recorded.log, timeline, bad,
                program_name=recorded.program.name, seed=recorded.seed,
            )


def failing_epoch_record(steps, window):
    program = order_violation_program()
    seed = find_seed(program)
    return epoch_record(
        program, steps, window, seed=seed, config=MachineConfig(ncpus=4),
    )


class TestWindowedReproduce:
    CONFIG = ExplorerConfig(max_attempts=300)

    def test_windowed_reproduction_succeeds(self):
        recorded = failing_epoch_record(10, 2)
        assert recorded.failed
        report = reproduce_windowed(recorded, self.CONFIG)
        assert report.success
        assert report.epoch_path
        assert any(r.success for r in report.epoch_path)

    def test_report_identical_across_jobs(self):
        recorded = failing_epoch_record(10, 2)
        serial = render_report(reproduce_windowed(recorded, self.CONFIG))
        for jobs in (2, 4):
            parallel = render_report(
                reproduce_windowed(recorded, self.CONFIG, jobs=jobs)
            )
            assert parallel == serial, f"jobs={jobs} diverged"

    def test_full_history_rung_only_when_untruncated(self):
        truncated = failing_epoch_record(10, 2)
        if truncated.epochs.truncated_entries > 0 \
                or truncated.epochs.truncated_epochs > 0:
            assert None not in epoch_replay_ladder(truncated)
        untruncated = failing_epoch_record(10, 0)
        assert untruncated.epochs.truncated_entries == 0
        assert epoch_replay_ladder(untruncated)[-1] is None

    def test_unwindowed_recording_falls_back_to_plain_reproduce(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded = record(
            program, sketch=SketchKind.SYNC, seed=seed,
            config=MachineConfig(ncpus=4),
        )
        assert recorded.epochs is None
        windowed = reproduce_windowed(recorded, self.CONFIG)
        plain = reproduce(recorded, self.CONFIG)
        assert render_report(windowed) == render_report(plain)
        assert windowed.epoch_path == []

    def test_outcome_reason_names_the_rung(self):
        recorded = failing_epoch_record(10, 2)
        report = reproduce_windowed(recorded, self.CONFIG)
        assert report.success
        assert "epoch" in report.outcome_reason or \
            "full history" in report.outcome_reason
