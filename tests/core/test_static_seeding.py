"""Static seeding in the explorers: interleave order, metrics, invariance.

Static candidates do not form a strict tier: the :class:`Frontier`
keeps them in a FIFO lane and alternates them with mined feedback —
root first, every dynamic plan seed next, then mined/static/mined/...
These tests pin the alternation directly on the frontier, through the
serial explorer, and end-to-end through :func:`reproduce` with a real
:class:`StaticPlan`.
"""

from repro.analysis.static_ import analyze_program
from repro.core.constraints import EventRef, OrderConstraint
from repro.core.explorer import (
    ExplorerConfig,
    FeedbackExplorer,
    Frontier,
    static_candidates,
)
from repro.core.feedback import TIER_PLAN, TIER_ROOT, TIER_STATIC, Candidate
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.sim.failures import Failure, FailureKind
from repro.sim.trace import Trace

from tests.analysis.test_static_analyzer import racy_counter_program
from tests.conftest import find_seed


def _pin(key, tid_a=1, tid_b=2, occ=1):
    return OrderConstraint(
        before=EventRef(tid_a, "mem", key, occ),
        after=EventRef(tid_b, "mem", key, occ),
    )


STATICS = (
    frozenset({_pin("s0")}),
    frozenset({_pin("s1")}),
    frozenset({_pin("s2")}),
)


def _mined(key, depth=1, anchor=0):
    return Candidate(
        constraints=frozenset({_pin(key)}),
        depth=depth,
        anchor_gidx=anchor,
    )


def _trace(failed=False):
    trace = Trace(program_name="stub", steps=5)
    if failed:
        trace.failure = Failure(FailureKind.ASSERTION, where="stub")
    return trace


class TestFrontierInterleave:
    def test_without_statics_pops_are_pure_heap_order(self):
        frontier = Frontier()
        frontier.push(Candidate(frozenset(), 0, 0, tier=TIER_ROOT), 0)
        deep = _mined("b", depth=2)
        shallow = _mined("a", depth=1)
        frontier.push(deep, 0)
        frontier.push(shallow, 0)
        order = [frontier.pop()[0] for _ in range(3)]
        assert order == [
            frozenset(), shallow.constraints, deep.constraints
        ]

    def test_statics_alternate_with_mined(self):
        frontier = Frontier()
        for candidate in static_candidates(STATICS):
            frontier.push(candidate, 0)
        mined = [_mined(k) for k in ("m0", "m1", "m2", "m3")]
        for candidate in mined:
            frontier.push(candidate, 0)
        order = [frontier.pop()[0] for _ in range(7)]
        assert order == [
            mined[0].constraints,   # dynamic evidence first
            STATICS[0],
            mined[1].constraints,
            STATICS[1],
            mined[2].constraints,
            STATICS[2],
            mined[3].constraints,   # static lane drained: heap resumes
        ]

    def test_plan_seeds_pop_before_any_static(self):
        frontier = Frontier()
        for candidate in static_candidates(STATICS[:1]):
            frontier.push(candidate, 0)
        plan = Candidate(
            frozenset({_pin("p0")}), 1, 0, tier=TIER_PLAN, rank=0
        )
        frontier.push(plan, 0)
        frontier.push(_mined("m0"), 0)
        order = [frontier.pop()[0] for _ in range(3)]
        assert order[0] == plan.constraints
        assert order[1] == frozenset({_pin("m0")})
        assert order[2] == STATICS[0]

    def test_statics_drain_when_the_heap_is_empty(self):
        frontier = Frontier()
        for candidate in static_candidates(STATICS):
            frontier.push(candidate, 0)
        order = [frontier.pop()[0] for _ in range(3)]
        assert order == list(STATICS)
        assert len(frontier) == 0

    def test_length_counts_both_lanes(self):
        frontier = Frontier()
        frontier.push(_mined("m0"), 0)
        for candidate in static_candidates(STATICS):
            frontier.push(candidate, 0)
        assert len(frontier) == 4


class TestSerialExplorer:
    def test_statics_follow_the_root_when_nothing_is_mined(self):
        seen = []

        def runner(constraints, seed):
            seen.append(constraints)
            return _trace(), False  # stub traces mine no candidates

        config = ExplorerConfig(max_attempts=4, static_seeds=STATICS)
        FeedbackExplorer(SketchKind.NONE, config).explore(runner)
        assert seen[0] == frozenset()
        assert seen[1:4] == list(STATICS)

    def test_static_match_is_charged_to_metrics(self):
        def runner(constraints, seed):
            return _trace(failed=bool(constraints)), bool(constraints)

        config = ExplorerConfig(
            max_attempts=4, static_seeds=STATICS, metrics=True
        )
        explorer = FeedbackExplorer(SketchKind.NONE, config)
        result = explorer.explore(runner)
        assert result.success
        assert result.winning_constraints == STATICS[0]
        metrics = explorer.obs.metrics
        assert metrics.counter("sanitize.static.seeded").value == len(STATICS)
        assert metrics.counter("sanitize.static.matched").value == 1
        assert metrics.counter("sanitize.plan_matched").value == 0

    def test_duplicate_of_a_plan_seed_is_dropped(self):
        seen = []

        def runner(constraints, seed):
            seen.append(constraints)
            return _trace(), False

        config = ExplorerConfig(
            max_attempts=5,
            plan_seeds=STATICS[:1],
            static_seeds=STATICS,  # first one duplicates the plan seed
            metrics=True,
        )
        explorer = FeedbackExplorer(SketchKind.NONE, config)
        explorer.explore(runner)
        assert seen.count(STATICS[0]) == 1
        assert explorer.obs.metrics.counter(
            "sanitize.static.seeded"
        ).value == len(STATICS) - 1


class TestReproducerIntegration:
    def test_static_guidance_reproduces_the_racy_counter(self):
        program = racy_counter_program()
        seed = find_seed(program)
        recorded = record(program, sketch=SketchKind.NONE, seed=seed)
        assert recorded.failed
        plan = analyze_program(program, failure=recorded.failure.describe())
        assert plan.seeds_for(SketchKind.NONE)
        report = reproduce(
            recorded, ExplorerConfig(max_attempts=100), static_plan=plan
        )
        assert report.success

    def test_static_guidance_never_costs_attempts(self):
        program = racy_counter_program()
        seed = find_seed(program)
        recorded = record(program, sketch=SketchKind.NONE, seed=seed)
        plan = analyze_program(program)
        config = ExplorerConfig(max_attempts=100)
        baseline = reproduce(recorded, config)
        guided = reproduce(recorded, config, static_plan=plan)
        assert guided.success
        assert guided.attempts <= baseline.attempts

    def test_static_seeded_exploration_is_jobs_invariant(self):
        program = racy_counter_program()
        seed = find_seed(program)
        plan = analyze_program(program)
        assert plan.seeds_for(SketchKind.NONE)

        def outcome(jobs):
            recorded = record(program, sketch=SketchKind.NONE, seed=seed)
            report = reproduce(
                recorded,
                ExplorerConfig(max_attempts=40, batch_size=4, jobs=jobs),
                static_plan=plan,
            )
            return (report.success, report.attempts)

        assert outcome(1) == outcome(2)

    def test_rw_replay_ships_no_static_seeds(self):
        program = racy_counter_program()
        seed = find_seed(program)
        recorded = record(program, sketch=SketchKind.RW, seed=seed)
        plan = analyze_program(program)
        from repro.core.reproducer import Reproducer

        reproducer = Reproducer(
            recorded, ExplorerConfig(), static_plan=plan
        )
        assert reproducer.config.static_seeds == ()
