"""Degradation-ladder budget accounting.

Regression for the remainder-dropping split: ``max_attempts // rungs``
used to silently discard ``max_attempts % rungs`` attempts (budget 7
over 5 rungs ran only 5).  The exact-split contract: when no rung
succeeds, the ladder consumes *exactly* the configured budget.
"""

from __future__ import annotations

import dataclasses

import pytest

from tests.conftest import find_seed, order_violation_program

from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import (
    degradation_ladder,
    reproduce_degraded,
    split_rung_budgets,
)
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig


class TestSplitRungBudgets:
    def test_even_split(self):
        assert split_rung_budgets(10, 5) == [2, 2, 2, 2, 2]

    def test_remainder_goes_to_finest_rungs(self):
        assert split_rung_budgets(7, 5) == [2, 2, 1, 1, 1]
        assert split_rung_budgets(11, 3) == [4, 4, 3]

    def test_budget_smaller_than_ladder(self):
        assert split_rung_budgets(3, 5) == [1, 1, 1, 0, 0]

    def test_degenerate_inputs(self):
        assert split_rung_budgets(0, 4) == [0, 0, 0, 0]
        assert split_rung_budgets(-2, 3) == [0, 0, 0]
        assert split_rung_budgets(5, 0) == []

    @pytest.mark.parametrize("total", range(0, 23))
    @pytest.mark.parametrize("rungs", range(1, 6))
    def test_split_is_exact_and_monotone(self, total, rungs):
        budgets = split_rung_budgets(total, rungs)
        assert sum(budgets) == total
        assert budgets == sorted(budgets, reverse=True)
        assert max(budgets) - min(budgets) <= 1


def _doomed_recorded():
    """A recorded failure that no attempt can ever match.

    ODR-strict matching against a stdout no execution produces makes
    every rung exhaust its budget — the accounting worst case.
    """
    program = order_violation_program()
    seed = find_seed(program)
    recorded = record(
        program, sketch=SketchKind.RW, seed=seed, config=MachineConfig(ncpus=4)
    )
    return dataclasses.replace(recorded, stdout=["__unreachable__"])


class TestLadderBudgetExact:
    def test_full_ladder_consumes_exactly_the_budget(self):
        recorded = _doomed_recorded()
        rungs = degradation_ladder(recorded.sketch)
        assert len(rungs) == 5  # rw -> bb -> func -> sys -> sync
        report = reproduce_degraded(
            recorded,
            ExplorerConfig(max_attempts=7),
            use_feedback=False,
            match_output=True,
        )
        assert not report.success
        assert report.attempts == 7
        assert [r.attempts for r in report.degradation_path] == [2, 2, 1, 1, 1]

    def test_tiny_budget_skips_zero_rungs(self):
        recorded = _doomed_recorded()
        report = reproduce_degraded(
            recorded,
            ExplorerConfig(max_attempts=3),
            use_feedback=False,
            match_output=True,
        )
        assert not report.success
        assert report.attempts == 3
        # Only the three finest rungs ran; zero-budget rungs never appear.
        tried = [r.sketch for r in report.degradation_path]
        assert tried == [SketchKind.RW, SketchKind.BB, SketchKind.FUNC]
        assert all(r.attempts == 1 for r in report.degradation_path)
