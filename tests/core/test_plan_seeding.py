"""Plan seeding in the explorers: ordering, tiers, metrics, determinism."""

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.explorer import (
    ExplorerConfig,
    FeedbackExplorer,
    plan_candidates,
)
from repro.core.feedback import TIER_PLAN
from repro.core.recorder import record
from repro.core.reproducer import Reproducer, reproduce
from repro.core.sketches import SketchKind
from repro.sanitize import build_plan
from repro.sim import Program
from repro.sim.failures import Failure, FailureKind
from repro.sim.trace import Trace

from tests.conftest import find_seed, order_violation_program


def _racy_worker(ctx, iters):
    for _ in range(iters):
        value = yield ctx.read("counter")
        yield ctx.local(1)
        yield ctx.write("counter", value + 1)


def _racy_main(ctx, nworkers, iters):
    tids = []
    for _ in range(nworkers):
        tids.append((yield ctx.spawn(_racy_worker, iters)))
    for tid in tids:
        yield ctx.join(tid)
    final = yield ctx.read("counter")
    yield ctx.check(final == nworkers * iters, "lost update")


def racy_counter_program(nworkers=3, iters=5):
    return Program(
        name="racycounter",
        main=_racy_main,
        params={"nworkers": nworkers, "iters": iters},
        initial_memory={"counter": 0},
    )


def _pin(key, tid_a=1, tid_b=2):
    return OrderConstraint(
        before=EventRef(tid_a, "mem", key, 1),
        after=EventRef(tid_b, "mem", key, 1),
    )


SEEDS = (
    frozenset({_pin("x")}),
    frozenset({_pin("y")}),
    frozenset({_pin("z")}),
)


def _trace(failed=False):
    trace = Trace(program_name="stub", steps=5)
    if failed:
        trace.failure = Failure(FailureKind.ASSERTION, where="stub")
    return trace


class TestCandidateWrapping:
    def test_plan_candidates_preserve_rank_order(self):
        candidates = plan_candidates(SEEDS)
        assert [c.constraints for c in candidates] == list(SEEDS)
        assert all(c.tier == TIER_PLAN for c in candidates)

    def test_plan_rank_order_survives_the_frontier(self):
        # earlier plan ranks must pop first despite identical tiers
        candidates = plan_candidates(SEEDS)
        keys = [c.sort_key() for c in candidates]
        assert keys == sorted(keys)


class TestSerialExplorer:
    def test_root_attempt_runs_before_the_plan(self):
        seen = []

        def runner(constraints, seed):
            seen.append(constraints)
            return _trace(), False

        config = ExplorerConfig(max_attempts=4, plan_seeds=SEEDS)
        FeedbackExplorer(SketchKind.SYNC, config).explore(runner)
        assert seen[0] == frozenset()
        assert seen[1:4] == list(SEEDS)

    def test_plan_match_is_charged_to_metrics(self):
        def runner(constraints, seed):
            return _trace(failed=bool(constraints)), bool(constraints)

        config = ExplorerConfig(
            max_attempts=4, plan_seeds=SEEDS, metrics=True
        )
        explorer = FeedbackExplorer(SketchKind.SYNC, config)
        result = explorer.explore(runner)
        assert result.success
        assert result.winning_constraints == SEEDS[0]
        metrics = explorer.obs.metrics
        assert metrics.counter("sanitize.plan_seeded").value == len(SEEDS)
        assert metrics.counter("sanitize.plan_matched").value == 1

    def test_baseline_win_is_not_a_plan_match(self):
        def runner(constraints, seed):
            return _trace(failed=True), True  # attempt 1 wins outright

        config = ExplorerConfig(
            max_attempts=4, plan_seeds=SEEDS, metrics=True
        )
        explorer = FeedbackExplorer(SketchKind.SYNC, config)
        result = explorer.explore(runner)
        assert result.success
        assert result.attempt_count == 1
        assert explorer.obs.metrics.counter("sanitize.plan_matched").value == 0


class TestReproducerIntegration:
    def test_plan_narrows_config_to_applicable_seeds(self):
        program = racy_counter_program()
        seed = find_seed(program)
        recorded = record(program, sketch=SketchKind.RW, seed=seed)
        plan = build_plan(recorded.log)
        reproducer = Reproducer(recorded, ExplorerConfig(), plan=plan)
        # RW replay already pins everything: no seeds ship
        assert reproducer.config.plan_seeds == ()

    def test_plan_never_costs_attempts_on_a_one_shot_bug(self):
        program = order_violation_program()
        seed = find_seed(program)
        rich = record(program, sketch=SketchKind.RW, seed=seed)
        plan = build_plan(rich.log)
        recorded = record(program, sketch=SketchKind.SYNC, seed=seed)
        assert recorded.failed
        baseline = reproduce(recorded, ExplorerConfig(max_attempts=60))
        planned = reproduce(
            recorded, ExplorerConfig(max_attempts=60), plan=plan
        )
        assert planned.success
        assert planned.attempts <= baseline.attempts

    def test_plan_seeded_exploration_is_jobs_invariant(self):
        program = racy_counter_program()
        seed = find_seed(program)
        rich = record(program, sketch=SketchKind.RW, seed=seed)
        plan = build_plan(rich.log)
        assert plan.seeds_for(SketchKind.SYNC)  # the plan actually ships

        def outcome(jobs):
            recorded = record(program, sketch=SketchKind.SYNC, seed=seed)
            report = reproduce(
                recorded,
                ExplorerConfig(max_attempts=30, batch_size=4, jobs=jobs),
                plan=plan,
            )
            return (report.success, report.attempts)

        assert outcome(1) == outcome(2)
