"""Tests for ODR-style output-strict reproduction."""

import pytest

from repro import ExplorerConfig, SketchKind, record, reproduce, replay_complete
from repro.sim import Program

from tests.conftest import find_seed


def _chatty_program():
    """A buggy program whose output depends on the interleaving, so
    output-strict matching is genuinely stricter than failure matching."""

    def worker(ctx, wid):
        for i in range(2):
            value = yield ctx.read("n")
            yield ctx.local(1)
            yield ctx.write("n", value + 1)
            yield ctx.output((wid, value))

    def main(ctx):
        a = yield ctx.spawn(worker, "a")
        b = yield ctx.spawn(worker, "b")
        yield ctx.join(a)
        yield ctx.join(b)
        n = yield ctx.read("n")
        yield ctx.check(n == 4, "lost update")

    return Program("chatty", main, initial_memory={"n": 0})


class TestOutputMatching:
    def test_recorded_run_captures_stdout(self):
        program = _chatty_program()
        recorded = record(program, SketchKind.SYNC, seed=3)
        assert len(recorded.stdout) == 4

    def test_strict_reproduction_matches_output_exactly(self):
        program = _chatty_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.SYNC, seed=seed)
        report = reproduce(
            recorded, ExplorerConfig(max_attempts=400), match_output=True
        )
        assert report.success
        trace = replay_complete(program, report.complete_log)
        assert trace.stdout == recorded.stdout

    def test_loose_reproduction_may_differ_in_output(self):
        # Not guaranteed for any one seed, but across seeds the loose mode
        # must be at least as fast and sometimes produce different output.
        program = _chatty_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.SYNC, seed=seed)
        loose = reproduce(recorded, ExplorerConfig(max_attempts=400))
        strict = reproduce(
            recorded, ExplorerConfig(max_attempts=400), match_output=True
        )
        assert loose.success and strict.success
        assert loose.attempts <= strict.attempts

    def test_strict_under_rw_sketch_is_immediate(self):
        # The full order reproduces the output byte-for-byte on attempt 1.
        program = _chatty_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.RW, seed=seed)
        report = reproduce(
            recorded, ExplorerConfig(max_attempts=10), match_output=True
        )
        assert report.success
        assert report.attempts == 1
