"""Tests for the partial-information replay scheduler."""

import pytest

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.pir import Gate, PIRScheduler, SketchCursor
from repro.core.recorder import record, record_with_trace
from repro.core.sketches import SketchEntry, SketchKind, event_visible
from repro.core.sketchlog import SketchLog
from repro.errors import ReplayDivergence
from repro.sim import Machine, Program
from repro.sim.ops import OpKind
from repro.sim.program import ThreadContext

from tests.conftest import counter_program, producer_consumer_program


def replay(program, log, constraints=(), seed=0, **cfg):
    scheduler = PIRScheduler(log, constraints, base_seed=seed)
    from repro.sim import MachineConfig

    return Machine(program, scheduler, MachineConfig(**cfg)).run()


class TestSketchCursor:
    def test_invisible_ops_are_free(self):
        ctx = ThreadContext(1)
        log = SketchLog(SketchKind.SYNC)
        log.append(SketchEntry(1, OpKind.LOCK, "m"))
        cursor = SketchCursor(log)
        assert cursor.gate(2, ctx.read("x")) is Gate.FREE

    def test_expected_thread_allowed(self):
        ctx = ThreadContext(1)
        log = SketchLog(SketchKind.SYNC)
        log.append(SketchEntry(1, OpKind.LOCK, "m"))
        cursor = SketchCursor(log)
        assert cursor.gate(1, ctx.lock("m")) is Gate.ALLOWED

    def test_other_thread_blocked(self):
        ctx = ThreadContext(2)
        log = SketchLog(SketchKind.SYNC)
        log.append(SketchEntry(1, OpKind.LOCK, "m"))
        cursor = SketchCursor(log)
        assert cursor.gate(2, ctx.lock("m")) is Gate.BLOCKED

    def test_signature_mismatch_is_divergence(self):
        ctx = ThreadContext(1)
        log = SketchLog(SketchKind.SYNC)
        log.append(SketchEntry(1, OpKind.LOCK, "m"))
        cursor = SketchCursor(log)
        with pytest.raises(ReplayDivergence, match="next visible op"):
            cursor.gate(1, ctx.lock("other"))

    def test_exhausted_sketch_frees_everything(self):
        ctx = ThreadContext(1)
        cursor = SketchCursor(SketchLog(SketchKind.SYNC))
        assert cursor.exhausted
        assert cursor.gate(1, ctx.lock("m")) is Gate.FREE


class TestSketchConformance:
    @pytest.mark.parametrize(
        "sketch",
        [SketchKind.SYNC, SketchKind.SYS, SketchKind.FUNC, SketchKind.BB,
         SketchKind.RW],
    )
    def test_replay_preserves_recorded_subsequence(self, sketch):
        program = producer_consumer_program(4)
        recorded = record(program, sketch=sketch, seed=9)
        trace = replay(program, recorded.log, seed=1)
        assert not trace.diverged, trace.divergence
        replayed_visible = [
            (e.tid, e.kind) for e in trace.events if event_visible(sketch, e)
        ]
        recorded_visible = [(en.tid, en.kind) for en in recorded.log]
        # The replay may extend past the recorded horizon, but its prefix
        # must be exactly the sketch.
        assert replayed_visible[: len(recorded_visible)] == recorded_visible

    def test_rw_sketch_replay_is_value_identical(self):
        # RW pins the order of every *shared* operation; thread-local
        # quanta may interleave differently, but all observable state
        # (shared access values, final memory, output) must be identical.
        program = counter_program(nworkers=3, iters=4)
        recorded, original = record_with_trace(program, SketchKind.RW, seed=9)
        trace = replay(program, recorded.log, seed=5)

        def shared(events):
            return [
                (e.signature(), e.value)
                for e in events
                if event_visible(SketchKind.RW, e)
            ]

        assert shared(trace.events) == shared(original.events)
        assert trace.final_memory == original.final_memory
        assert trace.stdout == original.stdout

    def test_different_base_seeds_vary_unrecorded_order(self):
        program = counter_program(nworkers=3, iters=4)
        recorded = record(program, SketchKind.SYNC, seed=9)
        schedules = set()
        for seed in range(6):
            trace = replay(program, recorded.log, seed=seed)
            schedules.add(tuple(trace.schedule))
        assert len(schedules) > 1  # memory ops are genuinely free

    def test_none_sketch_is_unconstrained_random(self):
        program = counter_program()
        recorded = record(program, SketchKind.NONE, seed=9)
        trace = replay(program, recorded.log, seed=4)
        assert not trace.diverged
        assert len(trace.events) > 0


class TestConstraints:
    def test_constraint_forces_order(self):
        # Force worker 2's first counter read to wait for worker 1's
        # final write: worker 1's three increments land first, so worker
        # 2 reads at least 3.
        program = counter_program(nworkers=2, iters=3)
        recorded = record(program, SketchKind.SYNC, seed=9)
        constraint = OrderConstraint(
            before=EventRef(1, "mem", "counter", 6),  # w1's last write
            after=EventRef(2, "mem", "counter", 1),  # w2's first read
        )
        for seed in range(5):
            trace = replay(program, recorded.log, [constraint], seed=seed)
            assert not trace.diverged, trace.divergence
            w2_reads = [
                e.value
                for e in trace.events
                if e.tid == 2 and e.kind is OpKind.READ and e.addr == "counter"
            ]
            assert w2_reads[0] == 3

    def test_contradictory_constraints_diverge(self):
        program = counter_program(nworkers=2, iters=3)
        recorded = record(program, SketchKind.SYNC, seed=9)
        a = OrderConstraint(
            before=EventRef(1, "mem", "counter", 1),
            after=EventRef(2, "mem", "counter", 1),
        )
        b = OrderConstraint(
            before=EventRef(2, "mem", "counter", 1),
            after=EventRef(1, "mem", "counter", 1),
        )
        trace = replay(program, recorded.log, [a, b], seed=0)
        assert trace.diverged
        assert "order constraint" in trace.divergence


class TestDivergenceDetection:
    def test_wrong_program_diverges(self):
        # Record one program, replay a structurally different one.
        recorded = record(producer_consumer_program(4), SketchKind.SYNC, seed=9)
        other = counter_program(nworkers=2, iters=2)
        trace = replay(other, recorded.log, seed=0)
        assert trace.diverged

    def test_divergence_reports_reason(self):
        recorded = record(producer_consumer_program(4), SketchKind.SYNC, seed=9)
        trace = replay(counter_program(), recorded.log, seed=0)
        assert trace.divergence  # human-readable text
        assert isinstance(trace.divergence, str)

    def test_describe(self):
        log = SketchLog(SketchKind.SYNC)
        scheduler = PIRScheduler(log, (), base_seed=3)
        text = scheduler.describe()
        assert "sync" in text and "seed=3" in text


class TestTrylockReplaySemantics:
    def test_trylock_outcome_may_flip_and_is_caught_downstream(self):
        # Sketch entries record that a TRYLOCK happened, not whether it
        # succeeded; a replay where the outcome flips takes a different
        # branch, and any resulting visible-op mismatch surfaces as
        # divergence rather than silent corruption.
        def holder(ctx):
            yield ctx.lock("m")
            yield ctx.local(4)
            yield ctx.unlock("m")

        def opportunist(ctx):
            got = yield ctx.trylock("m")
            if got:
                yield ctx.write("path", "fast")
                yield ctx.unlock("m")
            else:
                yield ctx.write("path", "slow")

        def main(ctx):
            a = yield ctx.spawn(holder)
            b = yield ctx.spawn(opportunist)
            yield ctx.join(a)
            yield ctx.join(b)

        program = Program("trylock", main, initial_memory={"path": None})
        recorded = record(program, SketchKind.SYNC, seed=3)
        outcomes = set()
        for seed in range(12):
            trace = replay(program, recorded.log, seed=seed)
            if trace.diverged:
                outcomes.add("diverged")
            else:
                outcomes.add(trace.final_memory["path"])
        # every attempt either completed on some branch or was aborted as
        # divergent - never a half-consistent state
        assert outcomes <= {"fast", "slow", "diverged"}
        assert outcomes, "no attempts ran"
