"""PoolLease: one warm executor lent to many explorations.

The service's sharing contract (``docs/parallel.md``, "borrowed"
pools): sessions exploring over a lease reuse one executor, a session
ending never tears it down, a broken-pool verdict recycles it for
everyone, and none of this can change a report.
"""

import pytest

from repro.apps import get_bug
from repro.core.explorer import ExplorerConfig
from repro.core.parallel import PoolLease, _LeasedPool
from repro.core.recorder import record
from repro.core.reproducer import render_report, reproduce
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

BUG = "pbzip2-order-free"
SEED = 3


@pytest.fixture(scope="module")
def recorded():
    spec = get_bug(BUG)
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=SEED,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


class TestLifecycle:
    def test_acquire_is_lazy_and_shared(self):
        lease = PoolLease(2)
        assert lease.builds == 0  # nothing until someone explores
        try:
            first = lease.acquire()
            assert lease.acquire() is first
            assert lease.builds == 1
        finally:
            lease.close()

    def test_session_shutdown_leaves_the_executor_alive(self):
        lease = PoolLease(2)
        try:
            view = _LeasedPool(lease, lease.acquire())
            view.shutdown(wait=True)  # the session-detach path
            # The shared executor still answers work.
            assert lease.acquire().submit(abs, -3).result(timeout=30) == 3
            assert lease.builds == 1
        finally:
            lease.close()

    def test_invalidate_is_keyed_on_identity(self):
        lease = PoolLease(2)
        try:
            stale = lease.acquire()
            lease.invalidate(stale)  # broken-pool verdict
            rebuilt = lease.acquire()
            assert rebuilt is not stale
            assert lease.builds == 2
            # A laggard session reporting the *old* executor broken must
            # not clobber the replacement other sessions already use.
            lease.invalidate(stale)
            assert lease.acquire() is rebuilt
        finally:
            lease.close()

    def test_close_refuses_further_acquires(self):
        lease = PoolLease(2)
        lease.acquire()
        lease.close()
        with pytest.raises(RuntimeError):
            lease.acquire()


class TestSharedExploration:
    def test_sessions_share_one_executor_and_reports_match_serial(
        self, recorded
    ):
        config = ExplorerConfig(max_attempts=200, jobs=2)
        serial = render_report(
            reproduce(recorded, ExplorerConfig(max_attempts=200))
        )
        lease = PoolLease(2)
        try:
            for _ in range(3):  # three sessions, one warm pool
                report = reproduce(recorded, config, pool=lease)
                assert render_report(report) == serial
            assert lease.builds == 1
        finally:
            lease.close()
