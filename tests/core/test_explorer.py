"""Tests for exploration strategies (driven through stub runners)."""

from repro.core.constraints import EventRef, OrderConstraint
from repro.core.explorer import (
    ExplorerConfig,
    FeedbackExplorer,
    RandomExplorer,
)
from repro.core.sketches import SketchKind
from repro.sim.failures import Failure, FailureKind
from repro.sim.trace import Trace

from tests.conftest import order_violation_program, run_program


def _trace(failed=False, diverged=False, steps=10):
    trace = Trace(program_name="stub", steps=steps)
    if failed:
        trace.failure = Failure(FailureKind.ASSERTION, where="stub")
    if diverged:
        trace.divergence = "stub divergence"
    return trace


class TestRandomExplorer:
    def test_stops_on_first_match(self):
        calls = []

        def runner(constraints, seed):
            calls.append(seed)
            return _trace(failed=(seed == 3)), seed == 3

        result = RandomExplorer(SketchKind.NONE, ExplorerConfig(max_attempts=10)).explore(runner)
        assert result.success
        assert result.attempt_count == 4
        assert calls == [0, 1, 2, 3]
        assert result.winning_seed == 3

    def test_respects_budget(self):
        def runner(constraints, seed):
            return _trace(), False

        result = RandomExplorer(SketchKind.NONE, ExplorerConfig(max_attempts=7)).explore(runner)
        assert not result.success
        assert result.attempt_count == 7

    def test_never_passes_constraints(self):
        seen = []

        def runner(constraints, seed):
            seen.append(constraints)
            return _trace(), False

        RandomExplorer(SketchKind.NONE, ExplorerConfig(max_attempts=3)).explore(runner)
        assert all(c == frozenset() for c in seen)

    def test_outcome_classification(self):
        outcomes = iter(
            [
                (_trace(), False),  # no_failure
                (_trace(diverged=True), False),  # diverged
                (_trace(failed=True), False),  # other_failure (no match)
                (_trace(failed=True), True),  # matched
            ]
        )

        def runner(constraints, seed):
            return next(outcomes)

        result = RandomExplorer(SketchKind.NONE, ExplorerConfig(max_attempts=10)).explore(runner)
        assert [r.outcome for r in result.attempts] == [
            "no_failure",
            "diverged",
            "other_failure",
            "matched",
        ]


class TestFeedbackExplorer:
    def test_reproduces_real_bug_and_uses_constraints(self):
        # Drive the real attempt machinery through the explorer: build a
        # runner over the order-violation program with a SYNC sketch.
        from repro.core.recorder import record
        from repro.core.reproducer import Reproducer

        program = order_violation_program()
        failing = None
        for seed in range(50):
            recorded = record(program, SketchKind.SYNC, seed=seed)
            if recorded.failed:
                failing = recorded
                break
        assert failing is not None
        reproducer = Reproducer(failing, ExplorerConfig(max_attempts=50))
        result = reproducer.explorer.explore(reproducer._attempt)
        assert result.success

    def test_seed_restarts_when_frontier_empties(self):
        # A runner whose traces yield no flip candidates under a SYNC
        # sketch (all races lock-protected): the frontier stays empty, so
        # the explorer must re-roll base seeds.
        from tests.conftest import counter_program as locked_counter

        seeds_seen = []

        def runner(constraints, seed):
            seeds_seen.append(seed)
            return run_program(locked_counter(locked=True), 999), False

        config = ExplorerConfig(max_attempts=4, seed_restarts=10)
        FeedbackExplorer(SketchKind.SYNC, config).explore(runner)
        # all four attempts ran, each with a fresh seed after the first
        assert len(seeds_seen) == 4
        assert len(set(seeds_seen)) == 4

    def test_restart_budget_bounds_attempts(self):
        def runner(constraints, seed):
            return _trace(), False  # empty traces -> no candidates

        config = ExplorerConfig(max_attempts=100, seed_restarts=3)
        result = FeedbackExplorer(SketchKind.SYNC, config).explore(runner)
        assert not result.success
        # initial attempt + 3 restarts
        assert result.attempt_count == 4

    def test_duplicate_traces_counted(self):
        def runner(constraints, seed):
            return run_program(order_violation_program(), 999), False

        config = ExplorerConfig(max_attempts=5, seed_restarts=10)
        result = FeedbackExplorer(SketchKind.SYNC, config).explore(runner)
        assert result.duplicate_traces >= 1

    def test_total_steps_accumulates(self):
        def runner(constraints, seed):
            return _trace(steps=25), False

        config = ExplorerConfig(max_attempts=3, seed_restarts=5)
        result = FeedbackExplorer(SketchKind.SYNC, config).explore(runner)
        assert result.total_steps == 25 * result.attempt_count
