"""End-to-end tests for the reproduction driver on micro-bugs covering
every failure category."""

import pytest

from repro import (
    ExplorerConfig,
    SketchKind,
    record,
    replay_complete,
    reproduce,
)
from repro.core.full_replay import CompleteLog
from repro.errors import SimUsageError
from repro.sim import MachineConfig, Program
from repro.sim.failures import Failure, FailureKind

from tests.conftest import (
    counter_program,
    deadlock_program,
    find_seed,
    order_violation_program,
)

FAST = ExplorerConfig(max_attempts=80)


def reproduce_bug(program, sketch, seed, oracle=None, use_feedback=True,
                  config=FAST):
    recorded = record(program, sketch=sketch, seed=seed, oracle=oracle)
    assert recorded.failed, "production run must fail"
    return recorded, reproduce(recorded, config, use_feedback=use_feedback)


class TestAssertionBug:
    @pytest.mark.parametrize("sketch", list(SketchKind))
    def test_order_violation_reproduces_under_every_sketch(self, sketch):
        program = order_violation_program()
        seed = find_seed(program)
        recorded, report = reproduce_bug(program, sketch, seed)
        assert report.success
        assert report.attempts <= 80
        assert report.complete_log is not None

    def test_rw_sketch_reproduces_first_try(self):
        program = order_violation_program()
        seed = find_seed(program)
        _, report = reproduce_bug(program, SketchKind.RW, seed)
        assert report.attempts == 1


class TestDeadlockBug:
    def test_deadlock_reproduces(self):
        program = deadlock_program()
        seed = find_seed(program)
        recorded, report = reproduce_bug(program, SketchKind.SYNC, seed)
        assert report.success
        assert recorded.failure.kind is FailureKind.DEADLOCK
        trace = replay_complete(program, report.complete_log)
        assert trace.failure.kind is FailureKind.DEADLOCK
        assert trace.failure.where == recorded.failure.where


class TestCrashBug:
    @staticmethod
    def _uaf_program():
        def freer(ctx):
            yield ctx.local(2)
            yield ctx.free("buf")

        def user(ctx):
            yield ctx.local(1)
            value = yield ctx.read(("buf", 0))
            return value

        def main(ctx):
            a = yield ctx.spawn(user)
            b = yield ctx.spawn(freer)
            yield ctx.join(a)
            yield ctx.join(b)

        return Program("uaf", main, initial_memory={("buf", 0): 42})

    def test_use_after_free_reproduces(self):
        program = self._uaf_program()
        seed = find_seed(program)
        recorded, report = reproduce_bug(program, SketchKind.SYNC, seed)
        assert report.success
        assert recorded.failure.kind is FailureKind.CRASH


class TestWrongOutputBug:
    @staticmethod
    def _oracle(trace):
        if trace.final_memory.get("counter") != 6:
            return Failure(FailureKind.WRONG_OUTPUT, where="lost increment")
        return None

    def test_wrong_output_reproduces_via_oracle(self):
        program = counter_program(nworkers=2, iters=3, locked=False)
        seed = None
        for candidate in range(150):
            if record(program, SketchKind.SYNC, seed=candidate,
                      oracle=self._oracle).failed:
                seed = candidate
                break
        assert seed is not None
        recorded, report = reproduce_bug(
            program, SketchKind.SYNC, seed, oracle=self._oracle
        )
        assert report.success
        trace = replay_complete(program, report.complete_log, oracle=self._oracle)
        assert trace.failure.kind is FailureKind.WRONG_OUTPUT


class TestReproduceEveryTime:
    def test_complete_log_replays_identically_many_times(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded, report = reproduce_bug(program, SketchKind.SYNC, seed)
        first = replay_complete(program, report.complete_log)
        for _ in range(5):
            again = replay_complete(program, report.complete_log)
            assert again.failure is not None
            assert again.failure.signature() == first.failure.signature()
            assert again.schedule == first.schedule

    def test_complete_log_json_round_trip(self):
        program = order_violation_program()
        seed = find_seed(program)
        _, report = reproduce_bug(program, SketchKind.SYNC, seed)
        log = report.complete_log
        restored = CompleteLog.from_json(log.to_json())
        assert restored.schedule == log.schedule
        assert restored.config == log.config
        assert restored.failure_signature == log.failure_signature
        trace = replay_complete(program, restored)
        assert trace.failed


class TestReportContents:
    def test_report_records_every_attempt(self):
        program = order_violation_program()
        seed = find_seed(program)
        _, report = reproduce_bug(program, SketchKind.SYNC, seed)
        assert len(report.records) == report.attempts
        assert report.records[-1].outcome == "matched"
        assert report.total_replay_steps >= sum(
            r.steps for r in report.records
        )
        assert "reproduced" in report.describe()

    def test_failure_required_to_reproduce(self):
        recorded = record(counter_program(), SketchKind.SYNC, seed=0)
        assert not recorded.failed
        with pytest.raises(SimUsageError, match="did not fail"):
            reproduce(recorded)

    def test_budget_exhaustion_reports_failure(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.NONE, seed=seed)
        report = reproduce(
            recorded,
            ExplorerConfig(max_attempts=1, seed_restarts=0),
            use_feedback=False,
        )
        if not report.success:  # a 1-attempt budget usually fails
            assert report.complete_log is None
            assert "NOT reproduced" in report.describe()

    def test_machine_config_propagates_to_replay(self):
        program = order_violation_program()
        config = MachineConfig(ncpus=2, kernel_seed=5)
        seed = None
        for candidate in range(100):
            recorded = record(program, SketchKind.SYNC, seed=candidate,
                              config=config)
            if recorded.failed:
                seed = candidate
                break
        assert seed is not None
        report = reproduce(recorded, FAST)
        assert report.success
        assert report.complete_log.config.ncpus == 2
        assert report.complete_log.config.kernel_seed == 5


class TestFeedbackAblation:
    def test_random_explorer_also_eventually_reproduces(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.SYNC, seed=seed)
        report = reproduce(
            recorded, ExplorerConfig(max_attempts=200), use_feedback=False
        )
        assert report.success  # the bug is frequent enough for stress mode

    def test_feedback_never_slower_on_this_bug(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.SYNC, seed=seed)
        with_fb = reproduce(recorded, ExplorerConfig(max_attempts=200))
        without_fb = reproduce(
            recorded, ExplorerConfig(max_attempts=200), use_feedback=False
        )
        assert with_fb.success
        assert with_fb.attempts <= without_fb.attempts
