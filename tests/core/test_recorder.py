"""Tests for production-run recording."""

import pytest

from repro.core.cost import CostModel
from repro.core.recorder import apply_oracle, record, record_with_trace
from repro.core.sketches import SketchKind, event_visible
from repro.sim import MachineConfig
from repro.sim.failures import Failure, FailureKind

from tests.conftest import counter_program, find_seed, order_violation_program


class TestSketchContents:
    def test_log_contains_exactly_visible_events(self):
        for sketch in SketchKind:
            recorded, trace = record_with_trace(
                counter_program(), sketch=sketch, seed=3
            )
            visible = [e for e in trace.events if event_visible(sketch, e)]
            assert len(recorded.log) == len(visible)
            for entry, event in zip(recorded.log, visible):
                assert entry.tid == event.tid
                assert entry.kind is event.kind

    def test_none_sketch_is_empty(self):
        recorded = record(counter_program(), sketch=SketchKind.NONE, seed=3)
        assert len(recorded.log) == 0
        assert recorded.stats.overhead == 0.0

    def test_sketch_order_is_global_order(self):
        recorded, trace = record_with_trace(
            counter_program(), sketch=SketchKind.RW, seed=3
        )
        gidxs = []
        cursor = 0
        for entry in recorded.log:
            while trace.events[cursor].signature() != (
                entry.tid,
                entry.kind,
                trace.events[cursor].addr,
                trace.events[cursor].obj,
                trace.events[cursor].name,
                trace.events[cursor].label,
            ):
                cursor += 1
            gidxs.append(cursor)
            cursor += 1
        assert gidxs == sorted(gidxs)


class TestDeterminism:
    def test_same_seed_same_record(self):
        a = record(counter_program(), sketch=SketchKind.SYNC, seed=7)
        b = record(counter_program(), sketch=SketchKind.SYNC, seed=7)
        assert a.log.entries == b.log.entries
        assert a.stats.recorded_time == b.stats.recorded_time

    def test_recording_does_not_perturb_execution(self):
        # The observer charges virtual time but must not change which
        # events execute: heavy and absent instrumentation see the same
        # event sequence for the same seed.
        _, bare = record_with_trace(counter_program(), SketchKind.NONE, seed=5)
        _, heavy = record_with_trace(counter_program(), SketchKind.RW, seed=5)
        assert [e.signature() for e in bare.events] == [
            e.signature() for e in heavy.events
        ]
        assert bare.final_memory == heavy.final_memory


class TestOverheadAccounting:
    def test_overhead_increases_with_sketch_level(self):
        overheads = []
        for sketch in (SketchKind.NONE, SketchKind.SYNC, SketchKind.RW):
            recorded = record(counter_program(nworkers=3, iters=6), sketch, seed=2)
            overheads.append(recorded.stats.overhead)
        assert overheads[0] < overheads[1] < overheads[2]

    def test_rw_overhead_grows_with_cpus(self):
        program = counter_program(nworkers=4, iters=8)
        small = record(program, SketchKind.RW, seed=2, config=MachineConfig(ncpus=2))
        large = record(program, SketchKind.RW, seed=2, config=MachineConfig(ncpus=8))
        assert large.stats.overhead > small.stats.overhead

    def test_cost_model_scaling(self):
        cheap = record(
            counter_program(), SketchKind.RW, seed=2, cost_model=CostModel()
        )
        pricey = record(
            counter_program(),
            SketchKind.RW,
            seed=2,
            cost_model=CostModel().scaled(4.0),
        )
        assert pricey.stats.overhead > cheap.stats.overhead

    def test_stats_fields_consistent(self):
        recorded, trace = record_with_trace(
            counter_program(), SketchKind.SYNC, seed=2
        )
        stats = recorded.stats
        assert stats.total_events == len(trace.events)
        assert stats.logged_entries == len(recorded.log)
        assert stats.log_bytes == recorded.log.size_bytes()
        assert stats.bytes_per_kilo_events > 0

    def test_describe_mentions_overhead(self):
        recorded = record(counter_program(), SketchKind.SYNC, seed=2)
        assert "overhead" in recorded.describe()

    def test_unusable_native_baseline_is_not_zero_overhead(self):
        # A dead baseline must read "unmeasured", never "free": overhead
        # is None (not 0.0) and renders as n/a wherever it is shown.
        from dataclasses import replace

        recorded = record(counter_program(), SketchKind.SYNC, seed=2)
        broken = replace(recorded.stats, native_time=0)
        assert broken.overhead is None
        assert broken.overhead_percent is None
        assert broken.render_overhead() == "n/a"
        assert replace(recorded, stats=broken).describe().count("n/a") == 1
        # A real baseline still renders a percentage.
        assert recorded.stats.render_overhead().endswith("%")


class TestFailureCapture:
    def test_failing_run_recorded_with_failure(self):
        program = order_violation_program()
        seed = find_seed(program)
        recorded = record(program, SketchKind.SYNC, seed=seed)
        assert recorded.failed
        assert recorded.failure.kind is FailureKind.ASSERTION

    def test_clean_run_has_no_failure(self):
        recorded = record(counter_program(), SketchKind.SYNC, seed=0)
        assert not recorded.failed


class TestOracles:
    @staticmethod
    def _oracle(trace):
        if trace.final_memory.get("counter", 0) != 6:
            return Failure(FailureKind.WRONG_OUTPUT, where="counter != 6")
        return None

    def test_oracle_flags_wrong_output(self):
        program = counter_program(nworkers=2, iters=3, locked=False)
        seed = None
        for candidate in range(100):
            recorded = record(program, SketchKind.SYNC, seed=candidate,
                              oracle=self._oracle)
            if recorded.failed:
                seed = candidate
                break
        assert seed is not None, "no lost update in 100 seeds"
        assert recorded.failure.kind is FailureKind.WRONG_OUTPUT

    def test_machine_failure_wins_over_oracle(self):
        program = order_violation_program()
        seed = find_seed(program)

        def greedy_oracle(trace):
            return Failure(FailureKind.WRONG_OUTPUT, where="should not be used")

        recorded = record(program, SketchKind.SYNC, seed=seed, oracle=greedy_oracle)
        assert recorded.failure.kind is FailureKind.ASSERTION

    def test_oracle_must_report_wrong_output_kind(self):
        def bad_oracle(trace):
            return Failure(FailureKind.CRASH, where="wrong kind")

        with pytest.raises(ValueError, match="WRONG_OUTPUT"):
            record(counter_program(), SketchKind.SYNC, seed=0, oracle=bad_oracle)

    def test_apply_oracle_none_passthrough(self):
        _, trace = record_with_trace(counter_program(), SketchKind.NONE, seed=0)
        assert apply_oracle(trace, None) is None
