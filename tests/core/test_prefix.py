"""Schedule-prefix memoization: exactness, planning, and bounded memory."""

from __future__ import annotations

import pytest

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.feedback import FeedbackDB, FeedbackGenerator
from repro.core.parallel import AttemptContext, run_attempt
from repro.core.prefix import (
    BASE_DEPTH,
    CAPTURE_DEPTHS,
    MIN_RESUME_DEPTH,
    PrefixTree,
    ResumePlan,
    planned_depths,
    resume_depth,
    resume_machine,
)
from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

#: flips from these bugs span both constraint families (mem and lock).
BUGS = ("mysql-atom-log", "apache-order-ref", "pbzip2-order-free")


class TestPlannedDepths:
    def test_short_parents_plan_nothing(self):
        assert planned_depths(0) == ()
        assert planned_depths(MIN_RESUME_DEPTH) == ()

    @pytest.mark.parametrize("steps", [25, 60, 100, 247, 1000, 9999])
    def test_depths_are_bounded_increasing_and_strictly_inside(self, steps):
        depths = planned_depths(steps)
        # geometric ladder: O(log steps) snapshots, each double the last.
        assert len(depths) <= len(CAPTURE_DEPTHS)
        assert all(MIN_RESUME_DEPTH <= d < steps for d in depths)
        assert list(depths) == sorted(set(depths))
        assert all(b == 2 * a for a, b in zip(depths, depths[1:]))
        if steps > BASE_DEPTH:
            assert depths[0] == BASE_DEPTH

    def test_pure_function_of_step_count(self):
        # worker processes plan independently; the plans must agree.
        assert planned_depths(300) == planned_depths(300)


class TestResumeDepth:
    def test_zero_when_nothing_fits(self):
        assert resume_depth(10, 5) == 0
        assert resume_depth(300, 0) == 0

    @pytest.mark.parametrize("steps", [60, 247, 1000])
    def test_picks_the_deepest_planned_depth_inside_the_prefix(self, steps):
        depths = planned_depths(steps)
        for prefix in (0, depths[0] - 1, depths[0], steps - 1, steps):
            chosen = resume_depth(steps, prefix)
            fitting = [d for d in depths if d <= prefix]
            assert chosen == (max(fitting) if fitting else 0)


class TestPrefixTree:
    def test_lru_eviction_keeps_the_most_recent(self):
        tree = PrefixTree(max_nodes=2)
        tree.put("a", (1, 1))
        tree.put("b", (2, 2))
        assert tree.get("a") == (1, 1)  # refreshes "a"
        tree.put("c", (3, 3))  # evicts "b", the least recent
        assert tree.get("b") is None
        assert tree.get("a") == (1, 1)
        assert tree.get("c") == (3, 3)
        assert len(tree) == 2

    def test_hit_and_miss_accounting(self):
        tree = PrefixTree()
        assert tree.get("missing") is None
        tree.put("k", (0, 0))
        tree.get("k")
        assert tree.misses == 1 and tree.hits == 1


def _context(bug_id: str) -> AttemptContext:
    spec = get_bug(bug_id)
    seed = find_failing_seed(spec, ncpus=2)
    assert seed is not None, f"{bug_id}: no failing seed"
    recorded = record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=2),
        oracle=spec.oracle,
    )
    return AttemptContext(
        recorded=recorded,
        base_policy="random",
        match_output=False,
        max_candidates_per_attempt=24,
        max_constraint_depth=8,
    )


def _trace_identity(trace):
    """Everything a trace decides, for byte-identity comparison."""
    return (
        tuple(trace.schedule),
        trace.steps,
        tuple(e.signature() for e in trace.events),
        trace.stdout,
        trace.final_memory,
        trace.thread_returns,
        trace.files,
        trace.clock,
        trace.failure.signature() if trace.failure else None,
        trace.divergence,
    )


class TestResumedTraceIdentity:
    """A resumed attempt is byte-identical to running the same attempt cold."""

    @pytest.mark.parametrize("bug_id", BUGS)
    def test_resume_matches_cold_for_mined_flips(self, bug_id):
        ctx = _context(bug_id)
        tree = PrefixTree()
        # the live parent run captures its own ladder snapshots
        parent_trace, _ = run_attempt(ctx, frozenset(), 0, tree=tree)
        assert tree.captures > 0, "parent run captured no snapshots"
        generator = FeedbackGenerator(
            sketch=ctx.recorded.sketch,
            db=FeedbackDB(),
            max_candidates_per_attempt=24,
            max_constraint_depth=8,
        )
        resumed = 0
        for candidate in generator.candidates(parent_trace, frozenset()):
            if candidate.flip is None:
                continue
            depth = resume_depth(candidate.parent_steps, candidate.safe_prefix)
            if depth <= 0:
                continue
            plan = ResumePlan(
                flip=candidate.flip,
                depth=depth,
                parent_steps=candidate.parent_steps,
            )
            cold, cold_matched = run_attempt(ctx, candidate.constraints, 0)
            warm, warm_matched = run_attempt(
                ctx, candidate.constraints, 0, resume=plan, tree=tree
            )
            assert tree.fallbacks == 0, "resume machinery fell back cold"
            assert _trace_identity(cold) == _trace_identity(warm)
            assert cold_matched == warm_matched
            resumed += 1
            if resumed >= 6:
                break
        assert resumed > 0, f"{bug_id}: no resumable candidate mined"
        assert tree.resumes == resumed

    def test_one_live_capture_serves_many_siblings(self):
        ctx = _context("mysql-atom-log")
        tree = PrefixTree()
        parent_trace, _ = run_attempt(ctx, frozenset(), 0, tree=tree)
        parent_captures = tree.captures
        generator = FeedbackGenerator(
            sketch=ctx.recorded.sketch,
            db=FeedbackDB(),
            max_candidates_per_attempt=24,
            max_constraint_depth=8,
        )
        plans = []
        for candidate in generator.candidates(parent_trace, frozenset()):
            if candidate.flip is None:
                continue
            depth = resume_depth(candidate.parent_steps, candidate.safe_prefix)
            if depth > 0:
                plans.append((candidate.constraints, ResumePlan(
                    flip=candidate.flip, depth=depth,
                    parent_steps=candidate.parent_steps,
                )))
        assert len(plans) >= 2, "workload mined too few resumable siblings"
        for constraints, plan in plans:
            run_attempt(ctx, constraints, 0, resume=plan, tree=tree)
        # every sibling resumed from the snapshots the parent captured
        # live — no extra parent replay of any kind happened.
        assert tree.resumes == len(plans)
        assert tree.fallbacks == 0

    def test_missing_snapshot_means_cold_run_not_a_rebuild(self):
        ctx = _context("mysql-atom-log")
        # the parent ran in *another process* (no tree): nothing captured
        parent_trace, _ = run_attempt(ctx, frozenset(), 0)
        generator = FeedbackGenerator(
            sketch=ctx.recorded.sketch,
            db=FeedbackDB(),
            max_candidates_per_attempt=24,
            max_constraint_depth=8,
        )
        candidate = next(
            c for c in generator.candidates(parent_trace, frozenset())
            if c.flip is not None
            and resume_depth(c.parent_steps, c.safe_prefix) > 0
        )
        depth = resume_depth(candidate.parent_steps, candidate.safe_prefix)
        plan = ResumePlan(
            flip=candidate.flip, depth=depth,
            parent_steps=candidate.parent_steps,
        )
        tree = PrefixTree()
        cold, _ = run_attempt(ctx, candidate.constraints, 0)
        warm, _ = run_attempt(
            ctx, candidate.constraints, 0, resume=plan, tree=tree
        )
        assert tree.resumes == 0 and tree.fallbacks == 0
        assert _trace_identity(cold) == _trace_identity(warm)

    def test_unusable_plan_degrades_to_cold_not_an_error(self):
        ctx = _context("mysql-atom-log")
        parent_trace, _ = run_attempt(ctx, frozenset(), 0)
        generator = FeedbackGenerator(
            sketch=ctx.recorded.sketch,
            db=FeedbackDB(),
            max_candidates_per_attempt=24,
            max_constraint_depth=8,
        )
        candidate = next(
            c for c in generator.candidates(parent_trace, frozenset())
            if c.flip is not None
        )
        tree = PrefixTree()
        # a flip that is not in the constraint set cannot name a parent
        bogus = ResumePlan(
            flip=candidate.flip, depth=48, parent_steps=parent_trace.steps
        )
        assert resume_machine(ctx, frozenset(), 0, bogus, tree) is None
        # run_attempt still answers, just cold
        cold, _ = run_attempt(ctx, frozenset(), 0)
        via_plan, _ = run_attempt(ctx, frozenset(), 0, resume=bogus, tree=tree)
        assert _trace_identity(cold) == _trace_identity(via_plan)
