"""Tests for sketch-log serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sketches import SketchEntry, SketchKind
from repro.core.sketchlog import SketchLog
from repro.errors import SketchFormatError
from repro.sim.ops import OpKind


def make_log(entries, sketch=SketchKind.SYNC):
    log = SketchLog(sketch=sketch)
    for tid, kind, key in entries:
        log.append(SketchEntry(tid=tid, kind=kind, key=key))
    return log


SAMPLE = [
    (1, OpKind.LOCK, "m"),
    (2, OpKind.UNLOCK, "m"),
    (1, OpKind.SYSCALL, ("send", "ch")),
    (3, OpKind.BASIC_BLOCK, "loop.head"),
    (1, OpKind.WRITE, ("buf", 3)),
    (0, OpKind.SPAWN, None),
]


class TestBinaryRoundTrip:
    def test_round_trip_preserves_entries(self):
        log = make_log(SAMPLE, SketchKind.RW)
        restored = SketchLog.from_bytes(log.to_bytes())
        assert restored.sketch is SketchKind.RW
        assert restored.entries == log.entries

    def test_empty_log_round_trips(self):
        log = make_log([], SketchKind.NONE)
        restored = SketchLog.from_bytes(log.to_bytes())
        assert restored.sketch is SketchKind.NONE
        assert len(restored) == 0

    def test_key_interning_shrinks_repeated_keys(self):
        many_same = make_log([(1, OpKind.LOCK, "m")] * 100)
        many_diff = make_log([(1, OpKind.LOCK, f"m{i}") for i in range(100)])
        assert many_same.size_bytes() < many_diff.size_bytes()

    def test_size_grows_linearly_with_entries(self):
        small = make_log([(1, OpKind.LOCK, "m")] * 10)
        large = make_log([(1, OpKind.LOCK, "m")] * 1000)
        per_entry = (large.size_bytes() - small.size_bytes()) / 990
        assert 4 <= per_entry <= 16


class TestBinaryErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(SketchFormatError, match="magic"):
            SketchLog.from_bytes(b"NOPE" + b"\x00" * 20)

    def test_truncated_header_rejected(self):
        with pytest.raises(SketchFormatError):
            SketchLog.from_bytes(b"PRES\x01")

    def test_truncated_entries_rejected(self):
        data = make_log(SAMPLE).to_bytes()
        with pytest.raises(SketchFormatError, match="truncated"):
            SketchLog.from_bytes(data[:-3])

    def test_corrupt_key_table_rejected(self):
        data = bytearray(make_log([(1, OpKind.LOCK, "m")]).to_bytes())
        # smash a byte inside the JSON key table
        data[15] ^= 0xFF
        with pytest.raises(SketchFormatError):
            SketchLog.from_bytes(bytes(data))

    def test_wrong_version_rejected(self):
        data = bytearray(make_log(SAMPLE).to_bytes())
        data[4] = 99
        with pytest.raises(SketchFormatError, match="version"):
            SketchLog.from_bytes(bytes(data))


class TestJsonRoundTrip:
    def test_round_trip(self):
        log = make_log(SAMPLE, SketchKind.SYS)
        restored = SketchLog.from_json(log.to_json())
        assert restored.sketch is SketchKind.SYS
        assert restored.entries == log.entries

    def test_tuple_keys_survive(self):
        log = make_log([(1, OpKind.WRITE, ("buf", 3))], SketchKind.RW)
        restored = SketchLog.from_json(log.to_json())
        assert restored.entries[0].key == ("buf", 3)
        assert isinstance(restored.entries[0].key, tuple)

    def test_corrupt_json_rejected(self):
        with pytest.raises(SketchFormatError):
            SketchLog.from_json('{"not": "a sketch"}')


class TestMetrics:
    def test_entries_per_kilo_events(self):
        log = make_log([(1, OpKind.LOCK, "m")] * 5)
        assert log.entries_per_kilo_events(1000) == pytest.approx(5.0)
        assert log.entries_per_kilo_events(0) == 0.0

    def test_describe_truncates(self):
        log = make_log([(1, OpKind.LOCK, "m")] * 30)
        text = log.describe(limit=3)
        assert "30 entries" in text and "27 more" in text


# Hypothesis: arbitrary logs survive both serializations.
keys = st.one_of(
    st.text(max_size=8),
    st.integers(-1000, 1000),
    st.none(),
    st.tuples(st.text(max_size=5), st.integers(0, 50)),
)
entries = st.lists(
    st.tuples(st.integers(0, 500), st.sampled_from(list(OpKind)), keys),
    max_size=40,
)


@given(entries, st.sampled_from(list(SketchKind)))
def test_property_binary_round_trip(entry_spec, sketch):
    log = make_log(entry_spec, sketch)
    restored = SketchLog.from_bytes(log.to_bytes())
    assert restored.sketch is sketch
    assert restored.entries == log.entries


@given(entries, st.sampled_from(list(SketchKind)))
def test_property_json_round_trip(entry_spec, sketch):
    log = make_log(entry_spec, sketch)
    restored = SketchLog.from_json(log.to_json())
    assert restored.entries == log.entries
