"""S3 property: serial, cold-pool, and warm-pool runs are byte-identical.

The warm-worker/prefix-memoization hot path must be invisible in
reports: for every T1 bug, a serial run, a first (cold) pooled run, a
second (warm — published session segment and worker state reused)
pooled run, and a chaos-supervised pooled run all produce the same
``report_signature``.  ``batch_size`` is pinned to 1 because the
exploration schedule is a function of batch size (not of jobs); at
batch 1 the engine's schedule is exactly the serial explorer's.
"""

from __future__ import annotations

import pytest

from repro.apps import all_bugs, get_bug
from repro.bench.seeds import find_failing_seed
from repro.core import shm
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.robust.runs import report_signature
from repro.robust.supervise import SuperviseConfig
from repro.sim import MachineConfig

BUG_IDS = [spec.bug_id for spec in all_bugs()]

#: chaos equivalence is slower (it retries killed attempts), so it runs
#: on a category-spanning subset rather than the full suite.
CHAOS_BUGS = ("mysql-atom-log", "openldap-deadlock", "pbzip2-order-free")

CONFIG = ExplorerConfig(max_attempts=25, batch_size=1)


def _recorded(bug_id: str):
    spec = get_bug(bug_id)
    seed = find_failing_seed(spec, ncpus=4)
    assert seed is not None, f"{bug_id}: no failing seed"
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


class TestWarmPoolEquivalence:
    @pytest.mark.parametrize("bug_id", BUG_IDS)
    def test_serial_cold_pool_warm_pool_signatures_match(self, bug_id):
        recorded = _recorded(bug_id)
        serial = reproduce(recorded, CONFIG, jobs=1)
        cold = reproduce(recorded, CONFIG, jobs=2)
        # the cold run published the session segment; this one reuses it
        warm = reproduce(recorded, CONFIG, jobs=2)
        expected = report_signature(serial)
        assert report_signature(cold) == expected
        assert report_signature(warm) == expected
        # the pooled arms really took the warm-worker path
        assert len(shm._PUBLISHED) > 0

    @pytest.mark.parametrize("bug_id", CHAOS_BUGS)
    def test_chaos_worker_death_preserves_the_signature(self, bug_id):
        recorded = _recorded(bug_id)
        serial = reproduce(recorded, CONFIG, jobs=1)
        chaotic = reproduce(
            recorded, CONFIG, jobs=2,
            supervise=SuperviseConfig(backoff_base=0.0),
            chaos="crash=0.06,hang=0.04,seed=11",
        )
        assert report_signature(chaotic) == report_signature(serial)

    def test_prefix_hits_are_jobs_invariant(self):
        recorded = _recorded("mysql-atom-log")
        reports = {
            jobs: reproduce(recorded, CONFIG, jobs=jobs)
            for jobs in (2, 4)
        }
        hits = {jobs: r.prefix_hits for jobs, r in reports.items()}
        assert hits[2] == hits[4]
        assert hits[2] > 0, "prefix memoization never engaged"
