"""Tests for replay ordering constraints."""

from repro.core.constraints import (
    ConstraintGate,
    EventRef,
    OccurrenceCounter,
    OrderConstraint,
    RefIndex,
)
from repro.sim.events import Event
from repro.sim.ops import Op, OpKind
from repro.sim.program import ThreadContext

from tests.conftest import counter_program, run_program


def mem_event(gidx, tid, kind, addr, value=None):
    return Event(gidx=gidx, tid=tid, kind=kind, addr=addr, value=value)


def lock_event(gidx, tid, obj):
    return Event(gidx=gidx, tid=tid, kind=OpKind.LOCK, obj=obj)


class TestOccurrenceCounter:
    def test_counts_memory_accesses_per_thread_address(self):
        counter = OccurrenceCounter()
        counter.observe(mem_event(0, 1, OpKind.READ, "x"))
        counter.observe(mem_event(1, 1, OpKind.WRITE, "x"))
        counter.observe(mem_event(2, 2, OpKind.READ, "x"))
        assert counter.mem_count(1, "x") == 2
        assert counter.mem_count(2, "x") == 1
        assert counter.mem_count(1, "y") == 0

    def test_counts_lock_acquisitions(self):
        counter = OccurrenceCounter()
        counter.observe(lock_event(0, 1, "m"))
        counter.observe(Event(gidx=1, tid=1, kind=OpKind.TRYLOCK, obj="m", value=True))
        counter.observe(Event(gidx=2, tid=1, kind=OpKind.TRYLOCK, obj="m", value=False))
        assert counter.lock_count(1, "m") == 2  # failed trylock not counted

    def test_unlock_not_counted(self):
        counter = OccurrenceCounter()
        counter.observe(Event(gidx=0, tid=1, kind=OpKind.UNLOCK, obj="m"))
        assert counter.lock_count(1, "m") == 0

    def test_executed_checks_occurrence(self):
        counter = OccurrenceCounter()
        ref = EventRef(1, "mem", "x", 2)
        counter.observe(mem_event(0, 1, OpKind.READ, "x"))
        assert not counter.executed(ref)
        counter.observe(mem_event(1, 1, OpKind.READ, "x"))
        assert counter.executed(ref)

    def test_pending_matches_exact_occurrence(self):
        ctx = ThreadContext(1)
        counter = OccurrenceCounter()
        ref = EventRef(1, "mem", "x", 2)
        op = ctx.read("x")
        assert not counter.pending_matches(1, op, ref)  # would be 1st
        counter.observe(mem_event(0, 1, OpKind.READ, "x"))
        assert counter.pending_matches(1, op, ref)  # now the 2nd
        assert not counter.pending_matches(2, op, ref)  # wrong thread
        assert not counter.pending_matches(1, ctx.read("y"), ref)

    def test_pending_matches_lock_family(self):
        ctx = ThreadContext(3)
        counter = OccurrenceCounter()
        ref = EventRef(3, "lock", "m", 1)
        assert counter.pending_matches(3, ctx.lock("m"), ref)
        assert counter.pending_matches(3, ctx.trylock("m"), ref)
        assert not counter.pending_matches(3, ctx.unlock("m"), ref)


class TestConstraintGate:
    def test_blocks_after_until_before_fires(self):
        ctx = ThreadContext(2)
        constraint = OrderConstraint(
            before=EventRef(1, "mem", "x", 1),
            after=EventRef(2, "mem", "x", 1),
        )
        gate = ConstraintGate([constraint])
        assert gate.blocks(2, ctx.read("x"))
        gate.observe(mem_event(0, 1, OpKind.WRITE, "x"))
        assert not gate.blocks(2, ctx.read("x"))

    def test_does_not_block_unrelated_ops(self):
        ctx = ThreadContext(2)
        constraint = OrderConstraint(
            before=EventRef(1, "mem", "x", 1),
            after=EventRef(2, "mem", "x", 1),
        )
        gate = ConstraintGate([constraint])
        assert not gate.blocks(2, ctx.read("y"))
        assert not gate.blocks(3, ctx.read("x"))
        assert not gate.blocks(2, ctx.lock("m"))

    def test_blocks_only_named_occurrence(self):
        ctx = ThreadContext(2)
        constraint = OrderConstraint(
            before=EventRef(1, "mem", "x", 1),
            after=EventRef(2, "mem", "x", 2),
        )
        gate = ConstraintGate([constraint])
        assert not gate.blocks(2, ctx.read("x"))  # 1st access is free
        gate.observe(mem_event(0, 2, OpKind.READ, "x"))
        assert gate.blocks(2, ctx.read("x"))  # 2nd access gated

    def test_satisfiability_check(self):
        gate = ConstraintGate(
            [
                OrderConstraint(
                    before=EventRef(1, "mem", "x", 1),
                    after=EventRef(2, "mem", "x", 1),
                )
            ]
        )
        assert gate.all_satisfiable_by(finished_tids=[])
        assert not gate.all_satisfiable_by(finished_tids=[1])
        gate.observe(mem_event(0, 1, OpKind.WRITE, "x"))
        assert gate.all_satisfiable_by(finished_tids=[1])


class TestRefIndex:
    def test_indexes_memory_and_lock_events(self):
        trace = run_program(counter_program(locked=True), 2)
        refs = RefIndex(trace.events)
        for event in trace.events:
            ref = refs.ref_of(event)
            if event.kind in (OpKind.READ, OpKind.WRITE):
                assert ref is not None and ref.family == "mem"
                assert ref.key == event.addr
            elif event.kind is OpKind.LOCK:
                assert ref is not None and ref.family == "lock"
            elif event.kind is OpKind.SPAWN:
                assert ref is None

    def test_occurrences_increment_in_program_order(self):
        trace = run_program(counter_program(nworkers=1, iters=3), 0)
        refs = RefIndex(trace.events)
        worker_reads = [
            e for e in trace.events
            if e.tid == 1 and e.kind is OpKind.READ and e.addr == "counter"
        ]
        # reads and writes share one per-(thread, address) sequence:
        # read #1, write #2, read #3, write #4, read #5, write #6
        occurrences = [refs.ref_of(e).occurrence for e in worker_reads]
        assert occurrences == [1, 3, 5]

    def test_lock_ref_builder(self):
        refs = RefIndex([])
        ref = refs.lock_ref(4, "m", 2)
        assert ref == EventRef(4, "lock", "m", 2)

    def test_describe(self):
        ref = EventRef(1, "mem", ("buf", 0), 3)
        constraint = OrderConstraint(ref, EventRef(2, "mem", ("buf", 0), 1))
        assert "->" in constraint.describe()
        assert "T1" in ref.describe()
