"""Tests for compressed sketch-log serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.recorder import record
from repro.core.sketches import SketchEntry, SketchKind
from repro.core.sketchlog import SketchLog
from repro.errors import SketchFormatError
from repro.sim.ops import OpKind

from tests.conftest import counter_program


def _recorded_log(sketch=SketchKind.RW, nworkers=3, iters=8):
    recorded = record(
        counter_program(nworkers=nworkers, iters=iters), sketch, seed=5
    )
    return recorded.log


class TestCompression:
    def test_round_trip(self):
        log = _recorded_log()
        restored = SketchLog.from_bytes_compressed(log.to_bytes_compressed())
        assert restored.sketch is log.sketch
        assert restored.entries == log.entries

    def test_empty_log_round_trips(self):
        log = SketchLog(SketchKind.NONE)
        assert SketchLog.from_bytes_compressed(
            log.to_bytes_compressed()
        ).entries == []

    def test_compression_shrinks_real_logs(self):
        log = _recorded_log(SketchKind.RW, nworkers=4, iters=20)
        raw = log.size_bytes()
        packed = log.compressed_size_bytes()
        assert packed < raw
        # repetitive sketch entries compress well
        assert packed < raw * 0.7

    def test_compression_level_tunable(self):
        log = _recorded_log(SketchKind.RW, nworkers=4, iters=20)
        fast = len(log.to_bytes_compressed(level=1))
        best = len(log.to_bytes_compressed(level=9))
        assert best <= fast

    def test_wrong_magic_rejected(self):
        log = _recorded_log()
        with pytest.raises(SketchFormatError, match="magic"):
            SketchLog.from_bytes_compressed(log.to_bytes())  # uncompressed

    def test_corrupt_payload_rejected(self):
        data = bytearray(_recorded_log().to_bytes_compressed())
        data[10] ^= 0xFF
        with pytest.raises(SketchFormatError):
            SketchLog.from_bytes_compressed(bytes(data))

    @given(st.integers(0, 200))
    def test_property_round_trip_synthetic(self, n):
        log = SketchLog(SketchKind.SYNC)
        for i in range(n):
            log.append(SketchEntry(tid=i % 4, kind=OpKind.LOCK, key=f"m{i % 3}"))
        restored = SketchLog.from_bytes_compressed(log.to_bytes_compressed())
        assert restored.entries == log.entries
