"""Smoke tests: every shipped example must run cleanly end to end.

These are the repository's "does the front door open" tests — examples
rot faster than anything else, so they are executed for real (in-process,
so coverage and failures point at actual lines).
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 4
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_to_completion(example, capsys):
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"


def test_quickstart_reports_deterministic_replay(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "deterministic replay #3" in out
    assert "the bug is captured" in out


def test_deadlock_hunt_verifies_the_fix(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "deadlock_hunt.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "100/100 clean runs" in out


def test_whatif_shows_doom_gradient(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "whatif_replay.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "what-if sweep" in out
    assert "fix verified" in out
