"""Chrome trace_event export: schema validity, determinism, round-trip."""

from __future__ import annotations

import json

import pytest

from repro.apps import get_bug
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.obs.export import (
    EXPORT_PID,
    chrome_trace,
    chrome_trace_events,
    load_chrome_trace,
    save_chrome_trace,
    validate_trace_event,
)
from repro.obs.session import ObsSession
from repro.obs.tracer import PARENT_TRACK, SpanRecord, Tracer
from repro.sim import MachineConfig


def _spans():
    return [
        SpanRecord("explore", "engine", 0.0, 100.0),
        SpanRecord("attempt", "attempt", 10.0, 30.0, track=1, pid=11,
                   args={"seed": 3, "outcome": "diverged"}),
        SpanRecord("cache-hit", "cache", 50.0, 0.0, args={"seed": 4}),
    ]


class TestEventShape:
    def test_spans_become_complete_events(self):
        events = chrome_trace_events(_spans())
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"explore", "attempt"}
        for event in complete:
            assert isinstance(event["dur"], float)
            assert event["pid"] == EXPORT_PID

    def test_zero_duration_becomes_instant(self):
        events = chrome_trace_events(_spans())
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["name"] == "cache-hit"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_every_lane_gets_a_thread_name(self):
        events = chrome_trace_events(_spans())
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[PARENT_TRACK] == "explorer"
        assert names[1] == "worker 1"

    def test_every_event_passes_the_schema_check(self):
        for event in chrome_trace_events(_spans()):
            assert validate_trace_event(event) == ""

    def test_events_are_sorted_by_start_time(self):
        events = [e for e in chrome_trace_events(_spans()) if e["ph"] != "M"]
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)

    def test_exotic_args_are_coerced_to_repr(self):
        span = SpanRecord("s", "replay", 0.0, 1.0,
                          args={"kind": SketchKind.SYNC})
        (event,) = [e for e in chrome_trace_events([span]) if e["ph"] == "X"]
        assert event["args"]["kind"] == repr(SketchKind.SYNC)
        json.dumps(event)  # must be serializable


class TestValidation:
    @pytest.mark.parametrize("event,problem", [
        ("not-a-dict", "is not an object"),
        ({"ph": "Q", "name": "x", "pid": 1, "tid": 0}, "unknown phase"),
        ({"ph": "X", "pid": 1, "tid": 0}, "missing name"),
        ({"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": "late"},
         "non-numeric ts"),
        ({"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 1.0},
         "without a numeric dur"),
    ])
    def test_malformed_events_are_named(self, event, problem):
        assert problem in validate_trace_event(event)

    def test_metadata_needs_no_timestamp(self):
        event = {"ph": "M", "name": "process_name", "pid": 1, "tid": 0}
        assert validate_trace_event(event) == ""


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        tracer = Tracer(enabled=True, epoch=0.0)
        tracer.spans.extend(_spans())
        path = str(tmp_path / "trace.json")
        save_chrome_trace(tracer, path)
        payload = load_chrome_trace(path)
        assert payload["traceEvents"]
        assert payload["otherData"]["format"] == "pres-obs-trace"

    def test_load_accepts_bare_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(chrome_trace_events(_spans())))
        payload = load_chrome_trace(str(path))
        assert isinstance(payload, dict) and payload["traceEvents"]

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"traceEvents": [')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_chrome_trace(str(path))

    def test_load_rejects_non_trace_document(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schedule": [1, 2]}')
        with pytest.raises(ValueError, match="no traceEvents"):
            load_chrome_trace(str(path))

    def test_load_rejects_malformed_event(self, tmp_path):
        path = tmp_path / "bad-event.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        with pytest.raises(ValueError, match="unknown phase"):
            load_chrome_trace(str(path))


class TestEndToEnd:
    def test_pooled_reproduction_exports_worker_lanes(self, tmp_path):
        spec = get_bug("pbzip2-order-free")
        recorded = record(
            spec.make_program(), sketch=SketchKind.SYNC, seed=3,
            config=MachineConfig(ncpus=4), oracle=spec.oracle,
        )
        session = ObsSession.create(trace=True, metrics=False)
        reproduce(recorded, ExplorerConfig(max_attempts=20, batch_size=4),
                  jobs=2, obs=session)
        path = str(tmp_path / "trace.json")
        session.write_trace(path)
        payload = load_chrome_trace(path)
        lanes = {
            e["tid"] for e in payload["traceEvents"] if e["ph"] != "M"
        }
        # attempt spans recorded in pool workers land on lanes >= 1
        assert PARENT_TRACK in lanes
        attempt_events = [
            e for e in payload["traceEvents"]
            if e.get("cat") == "attempt"
        ]
        assert attempt_events
        for event in payload["traceEvents"]:
            assert validate_trace_event(event) == ""
