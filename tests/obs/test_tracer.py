"""Tracer behavior: disabled-mode cost, span recording, worker merge."""

import pickle

from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    PARENT_TRACK,
    SpanRecord,
    Tracer,
)


class FakeClock:
    """A deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, start=0.0, step=0.001):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestDisabledMode:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False, epoch=0.0)
        # Identity, not equality: a disabled tracer allocates nothing
        # per call — every span() returns the one module-level object.
        assert tracer.span("attempt") is NULL_SPAN
        assert tracer.span("other", category="cache", x=1) is NULL_SPAN
        assert NULL_TRACER.span("anything") is NULL_SPAN

    def test_null_span_has_no_instance_dict(self):
        assert not hasattr(NULL_SPAN, "__dict__")

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False, epoch=0.0)
        with tracer.span("attempt", seed=3):
            pass
        tracer.instant("cache-hit")
        tracer.absorb(
            [SpanRecord("w", "replay", 0.0, 1.0, pid=9)], track=1
        )
        assert tracer.spans == []

    def test_disabled_tracer_never_reads_the_clock(self):
        reads = []

        def clock():
            reads.append(1)
            return 0.0

        tracer = Tracer(enabled=False, epoch=0.0, clock=clock)
        with tracer.span("attempt"):
            pass
        tracer.instant("tick")
        assert reads == []

    def test_null_span_does_not_swallow_exceptions(self):
        try:
            with NULL_TRACER.span("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            return
        raise AssertionError("exception was swallowed")


class TestRecording:
    def test_span_records_start_and_duration(self):
        clock = FakeClock(start=1.0, step=0.5)
        tracer = Tracer(enabled=True, epoch=1.0, clock=clock)
        with tracer.span("attempt", category="attempt", seed=7) as span:
            span.note(outcome="matched")
        (record,) = tracer.spans
        assert record.name == "attempt"
        assert record.category == "attempt"
        assert record.start_us == 0.0
        assert record.duration_us == 500_000.0  # one 0.5 s clock step
        assert record.args == {"seed": 7, "outcome": "matched"}
        assert record.track == PARENT_TRACK

    def test_instant_has_zero_duration(self):
        tracer = Tracer(enabled=True, epoch=0.0, clock=FakeClock())
        tracer.instant("cache-hit", category="cache", seed=3)
        (record,) = tracer.spans
        assert record.duration_us == 0.0
        assert record.args == {"seed": 3}

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer(enabled=True, epoch=0.0, clock=FakeClock())
        try:
            with tracer.span("attempt"):
                raise ValueError("attempt blew up")
        except ValueError:
            pass
        assert len(tracer.spans) == 1


class TestWorkerMerge:
    def test_absorb_retracks_worker_spans(self):
        parent = Tracer(enabled=True, epoch=0.0, clock=FakeClock())
        worker = [
            SpanRecord("attempt", "attempt", 10.0, 5.0, pid=4242),
            SpanRecord("replay", "replay", 11.0, 3.0, pid=4242),
        ]
        parent.absorb(worker, track=2)
        assert [s.track for s in parent.spans] == [2, 2]
        # absorb copies; the originals keep their track.
        assert worker[0].track == PARENT_TRACK
        assert parent.worker_lanes() == (2,)

    def test_span_records_pickle_roundtrip(self):
        record = SpanRecord(
            "attempt", "attempt", 1.5, 2.5, track=1, pid=99,
            args={"seed": 3},
        )
        assert pickle.loads(pickle.dumps(record)) == record

    def test_shared_epoch_makes_timestamps_comparable(self):
        clock = FakeClock(start=5.0, step=0.0)
        parent = Tracer(enabled=True, epoch=2.0, clock=clock)
        child = Tracer(enabled=True, epoch=parent.epoch, clock=clock)
        assert parent.now_us() == child.now_us()
