"""The ``pres inspect`` text renderer, pinned by a golden file.

The payload is hand-built from fixed timestamps (no clock involved), so
the rendering is byte-for-byte reproducible; the golden file at
``tests/fixtures/inspect_golden.txt`` is the contract for the report
layout.  Regenerate it by running this module as a script::

    PYTHONPATH=src python tests/obs/test_inspect.py
"""

from __future__ import annotations

import pathlib

from repro.obs.export import chrome_trace_events
from repro.obs.inspect import (
    render_attempt_timeline,
    render_phases,
    render_totals,
    render_trace,
)
from repro.obs.tracer import SpanRecord

GOLDEN = pathlib.Path(__file__).parent.parent / "fixtures" / "inspect_golden.txt"


def _payload():
    """A small two-worker session with fixed microsecond timestamps."""
    spans = [
        SpanRecord("reproduce", "session", 0.0, 9000.0,
                   args={"program": "demo", "sketch": "sync"}),
        SpanRecord("explore", "engine", 100.0, 8800.0,
                   args={"jobs": 2, "batch_size": 2}),
        SpanRecord("batch", "explore", 200.0, 4000.0, args={"size": 2}),
        SpanRecord("attempt", "attempt", 300.0, 1500.0, track=1, pid=11,
                   args={"seed": 0, "constraints": 0,
                         "outcome": "no_failure", "steps": 40}),
        SpanRecord("attempt", "attempt", 350.0, 1800.0, track=2, pid=12,
                   args={"seed": 0, "constraints": 1,
                         "outcome": "diverged", "steps": 22}),
        SpanRecord("cache-hit", "cache", 4300.0, 0.0,
                   args={"seed": 1, "constraints": 1}),
        SpanRecord("batch", "explore", 4400.0, 4000.0, args={"size": 1}),
        SpanRecord("attempt", "attempt", 4500.0, 3000.0, track=1, pid=11,
                   args={"seed": 0, "constraints": 2,
                         "outcome": "matched", "steps": 47}),
    ]
    return {"traceEvents": chrome_trace_events(spans)}


class TestSections:
    def test_attempt_timeline_has_one_column_per_lane(self):
        text = render_attempt_timeline(_payload())
        header = text.splitlines()[0]
        assert "worker 1" in header and "worker 2" in header
        assert "<- matched" in text

    def test_phase_table_lists_session_structure(self):
        text = render_phases(_payload())
        assert "reproduce" in text
        assert "explore" in text
        assert "batch" in text
        assert "attempt" not in text  # attempts are not phases

    def test_totals_aggregate_by_category(self):
        text = render_totals(_payload())
        assert "attempt" in text
        assert "cache" in text

    def test_empty_trace_renders_placeholders(self):
        empty = {"traceEvents": []}
        assert "no attempt spans" in render_attempt_timeline(empty)
        assert "no phase spans" in render_phases(empty)
        assert "empty trace" in render_totals(empty)


class TestGolden:
    def test_full_report_matches_golden_file(self):
        assert render_trace(_payload()) + "\n" == GOLDEN.read_text(), (
            "pres inspect layout changed; regenerate with "
            "`PYTHONPATH=src python tests/obs/test_inspect.py` "
            "if the change is intentional"
        )


if __name__ == "__main__":
    GOLDEN.write_text(render_trace(_payload()) + "\n")
    print(f"golden file regenerated at {GOLDEN}")
