"""Metrics instruments and the jobs-invariance snapshot contract."""

from __future__ import annotations

import json

import pytest

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    NULL_INSTRUMENT,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.session import ObsSession
from repro.sim import MachineConfig


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("attempts")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("attempts").inc(-1)

    def test_gauge_set_and_max(self):
        gauge = Gauge("frontier_peak")
        gauge.max(3)
        gauge.max(1)
        assert gauge.value == 3
        gauge.set(0)
        assert gauge.value == 0

    def test_histogram_buckets_and_summary(self):
        hist = Histogram("steps")
        for value in (1, 2, 3, 1024):
            hist.observe(value)
        rec = hist.to_record()
        assert rec["count"] == 4
        assert rec["sum"] == 1030
        assert rec["min"] == 1 and rec["max"] == 1024
        assert rec["buckets"]["le_1"] == 1
        assert rec["buckets"]["le_2"] == 1  # 2 falls on the bound
        assert rec["buckets"]["le_4"] == 1  # 3 rounds up to the next bound
        assert rec["buckets"]["le_1024"] == 1

    def test_histogram_overflow_bucket(self):
        hist = Histogram("huge")
        hist.observe(BUCKET_BOUNDS[-1] + 1)
        assert hist.to_record()["buckets"] == {"inf": 1}


class TestRegistry:
    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_disabled_registry_hands_out_the_shared_null(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_INSTRUMENT
        assert registry.gauge("g") is NULL_INSTRUMENT
        assert registry.histogram("h") is NULL_INSTRUMENT
        assert NULL_METRICS.counter("x") is NULL_INSTRUMENT
        # the null instrument absorbs every verb silently
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.set(3)
        NULL_INSTRUMENT.observe(9)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc(2)
        registry.histogram("steps").observe(10)
        registry.gauge("jobs").set(4)
        snapshot = json.loads(registry.to_json())
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert snapshot["gauges"]["jobs"] == 4
        assert snapshot["histograms"]["steps"]["count"] == 1

    def test_render_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("attempts").inc(3)
        registry.gauge("jobs").set(2)
        registry.histogram("steps").observe(7)
        text = registry.render()
        assert "attempts" in text and "jobs" in text and "steps" in text


def _recorded(bug_id: str):
    spec = get_bug(bug_id)
    seed = find_failing_seed(spec, ncpus=4)
    assert seed is not None, f"{bug_id}: no failing seed"
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


def _deterministic_view(session: ObsSession):
    """The snapshot minus gauges (which may carry wall/host figures)."""
    snapshot = session.metrics.snapshot()
    return {"counters": snapshot["counters"],
            "histograms": snapshot["histograms"]}


def _strip_engine_metrics(view):
    """Drop the parallel.* family, charged only by the batch engine."""
    return {
        kind: {name: value for name, value in instruments.items()
               if not name.startswith("parallel.")}
        for kind, instruments in view.items()
    }


class TestJobsInvariance:
    """Counters/histograms are identical for any jobs at fixed batch_size."""

    @pytest.mark.parametrize("bug_id",
                             ["pbzip2-order-free", "openldap-deadlock"])
    def test_jobs_1_vs_jobs_4_snapshots_match(self, bug_id):
        recorded = _recorded(bug_id)
        config = ExplorerConfig(max_attempts=25, batch_size=8)
        views = {}
        for jobs in (1, 4):
            session = ObsSession.create(trace=False, metrics=True)
            reproduce(recorded, config, jobs=jobs, obs=session)
            views[jobs] = _deterministic_view(session)
        assert views[1] == views[4]
        assert views[1]["counters"]["attempts"] > 0
        assert views[1]["counters"]["batches"] > 0

    def test_serial_explorer_matches_engine_at_batch_size_1(self):
        recorded = _recorded("pbzip2-order-free")
        serial_session = ObsSession.create(trace=False, metrics=True)
        reproduce(recorded, ExplorerConfig(max_attempts=20),
                  obs=serial_session)
        engine_session = ObsSession.create(trace=False, metrics=True)
        reproduce(recorded, ExplorerConfig(max_attempts=20, batch_size=1),
                  jobs=2, obs=engine_session)
        # the parallel.* family is engine bookkeeping (prefix-resume
        # accounting) the serial explorers never charge; it is still
        # jobs-invariant, which the jobs-1-vs-4 test above covers.
        assert (_strip_engine_metrics(_deterministic_view(serial_session))
                == _strip_engine_metrics(_deterministic_view(engine_session)))

    def test_attempt_counters_split_by_outcome(self):
        recorded = _recorded("pbzip2-order-free")
        session = ObsSession.create(trace=False, metrics=True)
        report = reproduce(recorded, ExplorerConfig(max_attempts=25),
                           obs=session)
        counters = session.metrics.snapshot()["counters"]
        by_outcome = sum(
            value for name, value in counters.items()
            if name.startswith("attempts_")
        )
        assert counters["attempts"] == report.attempts == by_outcome
        if report.success:
            assert counters["attempts_matched"] == 1
