"""Behavioral tests for the application suite.

Every bug must (a) stay dormant on most schedules, (b) manifest on some
schedule within a bounded seed search, (c) manifest as its declared
failure kind, and (d) where the app supports a fixed build, run clean when
the bug is compiled out.
"""

import pytest

from repro.apps import ALL_BUG_IDS, get_bug
from repro.apps.spec import ATOMICITY, DEADLOCK, ORDER
from repro.core.recorder import apply_oracle
from repro.sim.failures import FailureKind

from tests.conftest import run_program

SEED_BUDGET = 300

_EXPECTED_KINDS = {
    ATOMICITY: {FailureKind.ASSERTION, FailureKind.CRASH},
    ORDER: {FailureKind.ASSERTION, FailureKind.CRASH,
            FailureKind.WRONG_OUTPUT},
    DEADLOCK: {FailureKind.DEADLOCK},
}


def _failure_of(spec, trace):
    return apply_oracle(trace, spec.oracle)


def _first_failure(spec, budget=SEED_BUDGET):
    program = spec.make_program()
    for seed in range(budget):
        trace = run_program(program, seed)
        if _failure_of(spec, trace) is not None:
            return seed, trace
    return None, None


@pytest.mark.parametrize("bug_id", ALL_BUG_IDS)
class TestEveryBug:
    def test_manifests_within_seed_budget(self, bug_id):
        seed, trace = _first_failure(get_bug(bug_id))
        assert seed is not None, f"{bug_id} never manifested in {SEED_BUDGET} seeds"

    def test_failure_kind_matches_declared_type(self, bug_id):
        spec = get_bug(bug_id)
        _, trace = _first_failure(spec)
        assert trace is not None
        failure = _failure_of(spec, trace)
        assert failure.kind in _EXPECTED_KINDS[spec.bug_type], (
            bug_id,
            failure.describe(),
        )

    def test_dormant_on_some_schedules(self, bug_id):
        spec = get_bug(bug_id)
        program = spec.make_program()
        clean = sum(
            1
            for seed in range(40)
            if _failure_of(spec, run_program(program, seed)) is None
        )
        assert clean >= 10, f"{bug_id} fails on almost every schedule"

    def test_deterministic_per_seed(self, bug_id):
        program = get_bug(bug_id).make_program()
        a = run_program(program, 17)
        b = run_program(program, 17)
        assert a.failed == b.failed
        assert a.schedule == b.schedule


class TestFailureRates:
    def test_rates_are_in_the_rare_band(self):
        # The suite is calibrated so bugs are rare enough that stress
        # testing is slow but a failing production run is findable.
        rates = {}
        for bug_id in ALL_BUG_IDS:
            spec = get_bug(bug_id)
            program = spec.make_program()
            fails = sum(
                1
                for seed in range(100)
                if _failure_of(spec, run_program(program, seed)) is not None
            )
            rates[bug_id] = fails
        assert all(fails <= 60 for fails in rates.values()), rates
        assert any(fails <= 15 for fails in rates.values()), rates


class TestFixedVariants:
    def test_openldap_without_inversion_never_deadlocks(self):
        program = get_bug("openldap-deadlock").make_program(inversion=False)
        for seed in range(60):
            trace = run_program(program, seed)
            assert not trace.failed, (seed, trace.failure.describe())

    def test_fft_without_bug_always_correct(self):
        program = get_bug("fft-order-sync").make_program(buggy=False)
        for seed in range(60):
            trace = run_program(program, seed)
            assert not trace.failed, (seed, trace.failure.describe())

    def test_lu_without_bug_always_correct(self):
        program = get_bug("lu-atom-diag").make_program(buggy=False)
        for seed in range(60):
            trace = run_program(program, seed)
            assert not trace.failed, (seed, trace.failure.describe())


class TestAppSpecificInvariants:
    def test_mysql_binlog_matches_rows_on_clean_runs(self):
        program = get_bug("mysql-atom-log").make_program()
        for seed in range(30):
            trace = run_program(program, seed)
            if trace.failed:
                continue
            logged = trace.final_memory["logged_entries"]
            assert logged == trace.final_memory["rows"]
            binlog_records = sum(
                len(records)
                for name, records in trace.files.items()
                if name.startswith("binlog")
            )
            assert binlog_records == logged

    def test_apache_log_audit_on_clean_runs(self):
        program = get_bug("apache-atom-buf").make_program()
        for seed in range(20):
            trace = run_program(program, seed)
            if trace.failed:
                continue
            served = trace.final_memory["served"]
            flushed = trace.final_memory["flushed"]
            remaining = trace.final_memory["ap_buf_len"]
            assert flushed + remaining == served

    def test_pbzip2_writes_every_block_on_clean_runs(self):
        program = get_bug("pbzip2-order-free").make_program()
        blocks = program.params["blocks"]
        saw_clean = False
        for seed in range(20):
            trace = run_program(program, seed)
            if trace.failed:
                continue
            saw_clean = True
            assert len(trace.files.get("out.bz2", [])) == blocks
        assert saw_clean

    def test_radix_sorts_on_clean_runs(self):
        spec = get_bug("radix-order-rank")
        program = spec.make_program()
        for seed in range(20):
            trace = run_program(program, seed)
            if _failure_of(spec, trace) is not None:
                continue
            out = [value for key, value in sorted(
                ((addr, v) for addr, v in trace.final_memory.items()
                 if isinstance(addr, tuple) and addr[0] == "out"),
            )]
            assert out == sorted(out)

    def test_barnes_conserves_bodies_on_clean_runs(self):
        program = get_bug("barnes-atom-cell").make_program()
        expected = program.params["workers"] * program.params["bodies"]
        for seed in range(20):
            trace = run_program(program, seed)
            if trace.failed:
                continue
            total = sum(
                v for addr, v in trace.final_memory.items()
                if isinstance(addr, tuple) and addr[0] == "cell_count"
            )
            assert total == expected
