"""Tests for the bug registry: the suite must match the paper's Table 1
shape (11 applications; 13 bugs; 4 servers / 3 desktop / 4 scientific;
atomicity violations, order violations and deadlocks)."""

import pytest

from repro.apps import ALL_BUG_IDS, all_bugs, bugs_by_category, get_bug
from repro.apps.registry import apps
from repro.apps.spec import ATOMICITY, DEADLOCK, DESKTOP, ORDER, SCIENTIFIC, SERVER


class TestSuiteShape:
    def test_thirteen_bugs(self):
        assert len(all_bugs()) == 13

    def test_eleven_applications(self):
        assert len(apps()) == 11

    def test_category_split_matches_paper(self):
        assert len({s.app for s in bugs_by_category(SERVER)}) == 4
        assert len({s.app for s in bugs_by_category(DESKTOP)}) == 3
        assert len({s.app for s in bugs_by_category(SCIENTIFIC)}) == 4

    def test_bug_type_taxonomy_covered(self):
        types = {s.bug_type for s in all_bugs()}
        assert types == {ATOMICITY, ORDER, DEADLOCK}

    def test_exactly_one_deadlock(self):
        assert sum(1 for s in all_bugs() if s.bug_type == DEADLOCK) == 1

    def test_multi_variable_bugs_called_out(self):
        multi = [s.bug_id for s in all_bugs() if s.multi_variable]
        assert len(multi) >= 2  # the paper highlights multi-variable cases

    def test_ids_unique_and_stable(self):
        assert len(set(ALL_BUG_IDS)) == len(ALL_BUG_IDS)
        assert "mysql-atom-log" in ALL_BUG_IDS
        assert "pbzip2-order-free" in ALL_BUG_IDS


class TestLookup:
    def test_get_bug(self):
        spec = get_bug("openldap-deadlock")
        assert spec.app == "openldap"
        assert spec.bug_type == DEADLOCK

    def test_get_unknown_bug_lists_known(self):
        with pytest.raises(KeyError, match="mysql-atom-log"):
            get_bug("no-such-bug")

    def test_describe_mentions_type(self):
        assert "deadlock" in get_bug("openldap-deadlock").describe()


class TestPrograms:
    @pytest.mark.parametrize("bug_id", ALL_BUG_IDS)
    def test_every_bug_builds_a_program(self, bug_id):
        program = get_bug(bug_id).make_program()
        assert program.name == bug_id
        assert callable(program.main)

    def test_make_program_applies_overrides(self):
        program = get_bug("mysql-atom-log").make_program(workers=7)
        assert program.params["workers"] == 7
