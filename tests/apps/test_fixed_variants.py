"""Every bug ships with its upstream fix compiled in as a variant.

This is the suite's ground-truth check: the failure must come from the
modeled defect, not from the surrounding miniature — so the fixed build
must be clean on every schedule we can throw at it, while the buggy build
still fails somewhere.
"""

import pytest

from repro.apps import ALL_BUG_IDS, get_bug
from repro.core.recorder import apply_oracle

from tests.conftest import run_program

SEEDS = 60


@pytest.mark.parametrize("bug_id", ALL_BUG_IDS)
class TestFixedVariants:
    def test_every_bug_has_a_fix(self, bug_id):
        assert get_bug(bug_id).has_fix

    def test_fixed_variant_is_clean(self, bug_id):
        spec = get_bug(bug_id)
        program = spec.make_fixed_program()
        for seed in range(SEEDS):
            trace = run_program(program, seed)
            failure = apply_oracle(trace, spec.oracle)
            assert failure is None, (bug_id, seed, failure.describe())

    def test_fixed_variant_does_equivalent_work(self, bug_id):
        # The fix must not dodge the workload: the fixed build still
        # executes a comparable number of operations.
        spec = get_bug(bug_id)
        buggy = run_program(spec.make_program(), 0)
        fixed = run_program(spec.make_fixed_program(), 0)
        assert len(fixed.events) >= len(buggy.events) * 0.5


class TestFixSemantics:
    def test_mysql_fixed_still_rotates(self):
        spec = get_bug("mysql-atom-log")
        trace = run_program(spec.make_fixed_program(), 3)
        # rotation still happened: two binlog files or a closed first log
        assert trace.final_memory["binlog_current"] != "binlog.1"
        assert trace.final_memory["logged_entries"] == (
            spec.make_program().params["workers"]
            * spec.make_program().params["queries"]
        )

    def test_pbzip2_fixed_still_frees_the_queue(self):
        spec = get_bug("pbzip2-order-free")
        trace = run_program(spec.make_fixed_program(), 3)
        blocks = spec.make_program().params["blocks"]
        assert len(trace.files["out.bz2"]) == blocks
        # the queue region was freed at teardown (no leak)
        assert not any(
            isinstance(addr, tuple) and addr[0] == "q_item"
            for addr in trace.final_memory
        )

    def test_httrack_fixed_workers_fetch_everything(self):
        spec = get_bug("httrack-order-init")
        trace = run_program(spec.make_fixed_program(), 0)
        params = spec.make_program().params
        assert ("fetched", params["workers"] * params["urls"]) in trace.stdout

    def test_radix_fixed_sorts(self):
        spec = get_bug("radix-order-rank")
        trace = run_program(spec.make_fixed_program(), 12)
        out = [
            value
            for addr, value in sorted(
                (a, v) for a, v in trace.final_memory.items()
                if isinstance(a, tuple) and a[0] == "out"
            )
        ]
        assert out == sorted(out) and None not in out

    def test_make_fixed_program_rejects_unknown(self):
        from repro.apps.spec import BugSpec
        from repro.sim.program import Program

        spec = BugSpec(
            bug_id="x", app="x", category="server", bug_type="deadlock",
            build=lambda **kw: Program("x", None),
        )
        with pytest.raises(ValueError, match="no fixed variant"):
            spec.make_fixed_program()
