"""Tests for the `pres` command-line interface."""

import json

import pytest

from repro.cli import main


class TestBugs:
    def test_lists_all_thirteen(self, capsys):
        assert main(["bugs"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 13
        assert "mysql-atom-log" in out
        assert "deadlock" in out


class TestFindSeed:
    def test_prints_a_seed(self, capsys):
        assert main(["find-seed", "openldap-deadlock"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.isdigit()

    def test_unknown_bug_is_an_error(self, capsys):
        assert main(["find-seed", "no-such-bug"]) == 2
        assert "known bugs" in capsys.readouterr().err


class TestRecord:
    def test_record_reports_stats(self, capsys):
        assert main(["record", "fft-order-sync", "--seed", "43"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out and "entries" in out

    def test_record_writes_sketch_json(self, capsys, tmp_path):
        out_file = tmp_path / "sketch.json"
        assert main(
            ["record", "fft-order-sync", "--seed", "43", "--out", str(out_file)]
        ) == 0
        payload = json.loads(out_file.read_text())
        assert payload["sketch"] == "sync"
        assert payload["entries"]

    def test_sketch_flag_selects_mechanism(self, capsys, tmp_path):
        out_file = tmp_path / "sketch.json"
        assert main(
            ["record", "fft-order-sync", "--seed", "43", "--sketch", "rw",
             "--out", str(out_file)]
        ) == 0
        assert json.loads(out_file.read_text())["sketch"] == "rw"


class TestReproduce:
    def test_full_pipeline_and_replay(self, capsys, tmp_path):
        log_file = tmp_path / "complete.json"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--out", str(log_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced in" in out
        assert log_file.exists()

        code = main(["replay", "pbzip2-order-free", "--log", str(log_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced:" in out

    def test_clean_seed_is_rejected(self, capsys):
        # seed 0 of fft does not fail
        code = main(["reproduce", "fft-order-sync", "--seed", "0"])
        assert code == 1
        assert "did not fail" in capsys.readouterr().err

    def test_no_feedback_flag_accepted(self, capsys):
        code = main(
            ["reproduce", "openldap-deadlock", "--seed", "0", "--no-feedback",
             "--max-attempts", "50"]
        )
        assert code == 0

    def test_jobs_flag_reproduces_on_a_pool(self, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--jobs", "2", "--max-attempts", "40"]
        )
        assert code == 0
        assert "reproduced in" in capsys.readouterr().out


class TestDiagnose:
    def test_diagnose_prints_report(self, capsys):
        code = main(["diagnose", "openldap-deadlock", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "failure: deadlock" in out
        assert "wait-for cycle" in out


class TestBench:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "t1" in out

    def test_bench_renders_a_table(self, capsys):
        assert main(["bench", "e6"]) == 0
        out = capsys.readouterr().out
        assert "sketch log size" in out
        assert "mysql-atom-log" in out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "e99"]) == 2
        assert "available" in capsys.readouterr().err

    def test_bench_json_writes_machine_readable_results(self, capsys, tmp_path):
        assert main(["bench", "t1", "--json", "--json-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results written to" in out
        payload = json.loads((tmp_path / "BENCH_t1.json").read_text())
        assert payload["experiment"] == "t1"
        assert len(payload["records"]) == 13
        assert all("failure_rate" in record for record in payload["records"])


class TestExecOut:
    def test_reproduce_saves_execution(self, capsys, tmp_path):
        exec_file = tmp_path / "repro.jsonl"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--exec-out", str(exec_file)]
        )
        assert code == 0
        from repro.sim.persist import read_trace

        trace = read_trace(str(exec_file))
        assert trace.failed
        assert trace.failure.kind.value == "crash"


class TestObservability:
    def test_reproduce_writes_chrome_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--trace-out", str(trace_file)]
        )
        assert code == 0
        assert "observability trace written" in capsys.readouterr().out
        payload = json.loads(trace_file.read_text())
        assert payload["traceEvents"]
        names = {e["name"] for e in payload["traceEvents"]}
        assert "reproduce" in names and "attempt" in names

    def test_reproduce_writes_metrics_snapshot(self, capsys, tmp_path):
        metrics_file = tmp_path / "metrics.json"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--metrics-out", str(metrics_file)]
        )
        assert code == 0
        snapshot = json.loads(metrics_file.read_text())
        assert snapshot["counters"]["attempts"] >= 1
        assert snapshot["counters"]["attempts_matched"] == 1
        assert "attempt_steps" in snapshot["histograms"]

    def test_artifacts_written_even_on_failed_reproduction(
        self, capsys, tmp_path
    ):
        metrics_file = tmp_path / "metrics.json"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--max-attempts", "1", "--metrics-out", str(metrics_file)]
        )
        assert code == 1  # not reproduced within 1 attempt
        snapshot = json.loads(metrics_file.read_text())
        assert snapshot["counters"]["attempts"] == 1

    def test_inspect_renders_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--trace-out", str(trace_file)]
        ) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "attempt timeline" in out
        assert "<- matched" in out

    def test_inspect_rejects_non_trace_json(self, capsys, tmp_path):
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text('{"schedule": [1, 2, 3]}')
        assert main(["inspect", str(bogus)]) == 2
        assert capsys.readouterr().err

    def test_bench_embeds_metrics_in_json(self, capsys, tmp_path):
        metrics_file = tmp_path / "metrics.json"
        code = main(
            ["bench", "e12", "--json", "--json-dir", str(tmp_path),
             "--metrics-out", str(metrics_file)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_e12.json").read_text())
        assert payload["meta"]["metrics"]["counters"]["attempts"] > 0
        assert json.loads(metrics_file.read_text()) == payload["meta"]["metrics"]


class TestStats:
    def test_stats_prints_summary_and_hazards(self, capsys):
        assert main(["stats", "openldap-deadlock", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "sync density" in out
        assert "lock-order graph" in out

    def test_stats_sketch_flag_reports_visible_events(self, capsys):
        assert main(
            ["stats", "openldap-deadlock", "--seed", "5", "--sketch", "sync"]
        ) == 0
        out = capsys.readouterr().out
        assert "sync sketch would record" in out

    def test_stats_rejects_unknown_sketch_by_name(self, capsys):
        assert main(
            ["stats", "openldap-deadlock", "--seed", "5", "--sketch", "bogus"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown sketch kind 'bogus'" in err
        assert "sync" in err  # the error names the valid kinds


class TestStore:
    def _reproduce_into(self, store, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--store", str(store)]
        )
        out = capsys.readouterr().out
        assert code == 0
        return out

    def test_reproduce_store_round_trip_and_maintenance(self, capsys, tmp_path):
        store = tmp_path / "store"
        cold = self._reproduce_into(store, capsys)
        assert "0 attempt(s) answered from the store" in cold

        assert main(["store", "stats", str(store)]) == 0
        assert "attempt record(s)" in capsys.readouterr().out

        assert main(["store", "verify", str(store)]) == 0
        assert "store: ok" in capsys.readouterr().out

        warm = self._reproduce_into(store, capsys)
        assert "0 replayed live" in warm

        assert main(["store", "gc", str(store), "--max-records", "1"]) == 0
        assert "evicted" in capsys.readouterr().out

    def test_verify_reports_a_torn_tail(self, capsys, tmp_path):
        from repro.robust.inject import truncate_file

        store = tmp_path / "store"
        self._reproduce_into(store, capsys)
        shard = sorted(store.rglob("attempts.jsonl"))[0]
        truncate_file(str(shard), -3)

        assert main(["store", "verify", str(store)]) == 1
        out = capsys.readouterr().out
        assert "torn" in out


class TestResilience:
    def test_chaos_flag_reproduces_identically(self, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3", "--jobs", "2",
             "--chaos", "crash=0.2,hang=0.1,seed=7", "--max-attempts", "40"]
        )
        assert code == 0
        assert "reproduced in" in capsys.readouterr().out

    def test_bad_chaos_spec_is_a_usage_error(self, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--chaos", "explode=0.5"]
        )
        assert code == 2
        assert "bad chaos spec" in capsys.readouterr().err

    def test_supervision_flags_are_accepted(self, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3", "--jobs", "2",
             "--attempt-timeout", "60", "--max-retries", "1",
             "--max-attempts", "40"]
        )
        assert code == 0
        assert "reproduced in" in capsys.readouterr().out

    def test_run_journal_round_trip(self, capsys, tmp_path):
        runs = str(tmp_path / "runs")
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--runs", runs, "--run-id", "demo"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run journal:" in out
        assert "--resume demo" in out

        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--runs", runs, "--resume", "demo"]
        )
        resumed = capsys.readouterr().out
        assert code == 0
        assert "resuming run 'demo'" in resumed
        assert "run already completed" in resumed

    def test_run_id_and_resume_are_mutually_exclusive(self, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--run-id", "a", "--resume", "b"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resuming_an_unknown_run_is_a_usage_error(self, capsys, tmp_path):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--runs", str(tmp_path / "runs"), "--resume", "nope"]
        )
        assert code == 2
        assert "no run journal" in capsys.readouterr().err

    def test_interrupt_mid_exploration_exits_130(self, capsys, monkeypatch):
        from repro.core.explorer import FeedbackExplorer

        def boom(self, result, runner):
            raise KeyboardInterrupt

        monkeypatch.setattr(FeedbackExplorer, "_search", boom)
        code = main(["reproduce", "pbzip2-order-free", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 130
        assert "interrupted: true" in out

    def test_doctor_triages_and_cleans_a_store_directory(
        self, capsys, tmp_path
    ):
        store = tmp_path / "store"
        assert main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert main(["doctor", str(store)]) == 0
        assert "store: ok" in capsys.readouterr().out

        (store / "leftover.gc").write_text("")
        assert main(["doctor", str(store)]) == 1
        out = capsys.readouterr().out
        assert "stale" in out
        assert "--clean" in out  # the hint

        assert main(["doctor", str(store), "--clean"]) == 0
        assert "cleaned:" in capsys.readouterr().out
        assert main(["doctor", str(store)]) == 0
        assert "DAMAGED" in out
