"""The wire contract in isolation: routing and request validation."""

import json

import pytest

from repro.service.protocol import (
    JobRequest,
    ProtocolError,
    ROUTES,
    Route,
    match,
)


class TestMatch:
    def test_every_route_matches_its_own_pattern(self):
        for route in ROUTES:
            path = route.pattern.replace("{id}", "j000001")
            found, params = match(route.method, path)
            assert found is route
            if "{id}" in route.pattern:
                assert params == {"id": "j000001"}
            else:
                assert params == {}

    def test_unknown_path_is_404(self):
        with pytest.raises(ProtocolError) as err:
            match("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405_listing_allowed(self):
        with pytest.raises(ProtocolError) as err:
            match("DELETE", "/jobs")
        assert err.value.status == 405
        assert "GET" in err.value.message and "POST" in err.value.message

    def test_path_params_do_not_cross_segments(self):
        with pytest.raises(ProtocolError) as err:
            match("GET", "/jobs/a/b/result")
        assert err.value.status == 404

    def test_route_names_are_unique(self):
        names = [route.name for route in ROUTES]
        assert len(names) == len(set(names))


class TestJobRequest:
    def test_minimal_body_gets_defaults(self):
        request = JobRequest.from_json(b'{"bug": "fft-order-sync"}')
        assert request == JobRequest(bug="fft-order-sync")
        assert request.tenant == "default"
        assert request.jobs == 0  # "server decides"

    def test_round_trips_through_its_json_form(self):
        request = JobRequest(bug="b", tenant="team-a", seed=7, jobs=2)
        again = JobRequest.from_json(json.dumps(request.to_json()).encode())
        assert again == request

    @pytest.mark.parametrize("body,fragment", [
        (b"not json", "invalid JSON"),
        (b"[]", "JSON object"),
        (b"{}", "bug"),
        (b'{"bug": ""}', "bug"),
        (b'{"bug": "b", "surprise": 1}', "unknown fields: surprise"),
        (b'{"bug": "b", "tenant": "Team A"}', "tenant"),
        (b'{"bug": "b", "tenant": "' + b"x" * 40 + b'"}', "tenant"),
        (b'{"bug": "b", "sketch": "psychic"}', "sketch"),
        (b'{"bug": "b", "seed": "7"}', "seed"),
        (b'{"bug": "b", "seed": true}', "seed"),
        (b'{"bug": "b", "max_attempts": 0}', "max_attempts"),
        (b'{"bug": "b", "jobs": -1}', "jobs"),
        (b'{"bug": "b", "ncpus": 0}', "ncpus"),
        (b'{"bug": "b", "meta": {"k": 1}}', "meta"),
    ])
    def test_defective_bodies_are_400(self, body, fragment):
        with pytest.raises(ProtocolError) as err:
            JobRequest.from_json(body)
        assert err.value.status == 400
        assert fragment in err.value.message

    def test_tenant_charset_is_path_safe(self):
        for tenant in ("a", "team-a", "team_a", "a0-b1"):
            JobRequest(bug="b", tenant=tenant)
        for tenant in ("", "-lead", "UP", "a/b", "a.b", ".."):
            with pytest.raises(ProtocolError):
                JobRequest(bug="b", tenant=tenant)


def test_routes_are_frozen_data():
    route = ROUTES[0]
    assert isinstance(route, Route)
    with pytest.raises(Exception):
        route.method = "PUT"
