"""The service end to end, over real sockets.

One in-process server (``ServiceThread``, module-scoped: booting the
real asyncio server once keeps the suite fast) serves every test; each
test uses its own tenant namespace where isolation matters.  The
headline assertions:

* a submitted job's report is **byte-identical** to the serial engine's
  (`render_report`) for the same request, cold store, warm store, and
  `jobs=2` over the shared pool alike;
* admission refuses with 429 once the queue bound or a tenant budget is
  hit, and recovers;
* cancel/404/405/400/409 semantics match ``docs/service.md``;
* SIGTERM-style drain finishes running jobs and flips ``/healthz``.
"""

import http.client
import json
import socket

import pytest

from repro.apps import get_bug
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import render_report, reproduce
from repro.core.sketches import SketchKind
from repro.service import JobRequest, ServiceClient, ServiceError, ServiceThread
from repro.sim import MachineConfig

BUG = "pbzip2-order-free"
SEED = 3
MAX_ATTEMPTS = 200


def _slow_request(**overrides):
    """A request that runs long enough (~0.4s: server-side seed search
    plus a 19-attempt exploration) that submits racing it — queue-full,
    budget-full, cancel-while-queued — are deterministic in practice."""
    fields = dict(bug="mysql-atom-log", seed=None)
    fields.update(overrides)
    return JobRequest(**fields)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service") / "store"
    with ServiceThread(str(root), slots=2, pool_jobs=2) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


@pytest.fixture(scope="module")
def serial_report():
    spec = get_bug(BUG)
    recorded = record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=SEED,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )
    return render_report(
        reproduce(recorded, ExplorerConfig(max_attempts=MAX_ATTEMPTS))
    )


def _submit_and_wait(client, **overrides):
    fields = dict(bug=BUG, seed=SEED, max_attempts=MAX_ATTEMPTS)
    fields.update(overrides)
    doc = client.submit(JobRequest(**fields))
    final = client.wait_for(doc["id"])
    return doc["id"], final


class TestByteIdentity:
    def test_cold_job_matches_the_serial_engine(self, client, serial_report):
        job_id, final = _submit_and_wait(client, tenant="bytes")
        assert final["state"] == "done"
        assert client.result_text(job_id) == serial_report

    def test_warm_and_pooled_jobs_match_too(self, client, serial_report):
        for jobs in (1, 2):  # serial slot + shared-pool exploration
            job_id, final = _submit_and_wait(client, tenant="bytes", jobs=jobs)
            assert final["state"] == "done"
            assert client.result_text(job_id) == serial_report
        result = client.result(job_id)
        # The tenant's store answered the repeat's attempts from disk
        # (batch assembly may probe — and hit — beyond the winning
        # attempt, so hits can exceed the report's attempt count).
        assert result["cache_hits"] >= result["attempts"] > 0

    def test_result_json_carries_the_same_report(self, client, serial_report):
        job_id, _ = _submit_and_wait(client, tenant="bytes")
        assert client.result(job_id)["report"] == serial_report


class TestTenancy:
    def test_tenants_do_not_share_store_warmth(self, client):
        job_id, _ = _submit_and_wait(client, tenant="cold-tenant")
        result = client.result(job_id)
        assert result["cache_hits"] == 0  # nothing warmed this namespace

    def test_jobs_listing_filters_by_tenant(self, client):
        _submit_and_wait(client, tenant="list-a")
        _submit_and_wait(client, tenant="list-b")
        listed = client.jobs("list-a")
        assert listed and all(
            doc["request"]["tenant"] == "list-a" for doc in listed
        )


class TestErrors:
    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("DELETE", "/jobs")
        assert err.value.status == 405

    def test_invalid_body_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/jobs", body={"bug": ""})
        assert err.value.status == 400

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("j999999")
        assert err.value.status == 404

    def test_result_before_done_409(self, tmp_path):
        with ServiceThread(
            str(tmp_path / "store"), slots=1, pool_jobs=2
        ) as svc:
            local = ServiceClient(svc.url)
            running = local.submit(_slow_request())
            queued = local.submit(JobRequest(bug=BUG, seed=SEED))
            # The second job cannot have started: one slot, FIFO queue.
            with pytest.raises(ServiceError) as err:
                local.result(queued["id"])
            assert err.value.status == 409
            for doc in (running, queued):
                local.wait_for(doc["id"])

    def test_cancel_after_finish_409(self, client):
        job_id, _ = _submit_and_wait(client, tenant="late-cancel")
        with pytest.raises(ServiceError) as err:
            client.cancel(job_id)
        assert err.value.status == 409

    def test_malformed_request_line_400(self, service):
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as raw:
            raw.sendall(b"BOGUS\r\n\r\n")
            data = raw.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]


class TestBackpressure:
    def test_tenant_budget_refuses_with_429(self, tmp_path):
        with ServiceThread(
            str(tmp_path / "store"), slots=1, tenant_slots=1, pool_jobs=2
        ) as svc:
            local = ServiceClient(svc.url)
            first = local.submit(_slow_request(tenant="busy"))
            with pytest.raises(ServiceError) as err:
                local.submit(JobRequest(bug=BUG, seed=SEED, tenant="busy"))
            assert err.value.status == 429
            # Another tenant is unaffected by the noisy neighbour.
            other = local.submit(JobRequest(bug=BUG, seed=SEED, tenant="calm"))
            local.wait_for(first["id"])
            local.wait_for(other["id"])
            # Budget freed: the same tenant is admitted again.
            retry = local.submit(JobRequest(bug=BUG, seed=SEED, tenant="busy"))
            assert local.wait_for(retry["id"])["state"] == "done"

    def test_queue_bound_refuses_with_429(self, tmp_path):
        with ServiceThread(
            str(tmp_path / "store"), slots=1, max_queued=1, pool_jobs=2
        ) as svc:
            local = ServiceClient(svc.url)
            admitted = [
                local.submit(_slow_request())["id"],  # occupies the slot
                local.submit(JobRequest(bug=BUG, seed=SEED))["id"],  # queues
            ]
            with pytest.raises(ServiceError) as err:
                local.submit(JobRequest(bug=BUG, seed=SEED))
            assert err.value.status == 429
            for job_id in admitted:
                local.wait_for(job_id)


class TestLifecycle:
    def test_health_reports_ok_and_counters_accumulate(self, client):
        health = client.health()
        assert health["status"] == "ok"
        counters = client.metrics()["counters"]
        assert counters["service.submitted"] >= counters["service.done"] > 0

    def test_cancel_queued_job(self, tmp_path):
        with ServiceThread(
            str(tmp_path / "store"), slots=1, pool_jobs=2
        ) as svc:
            local = ServiceClient(svc.url)
            running = local.submit(_slow_request())
            queued = local.submit(JobRequest(bug=BUG, seed=SEED))
            cancelled = local.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            assert local.wait_for(running["id"])["state"] == "done"

    def test_drain_finishes_running_jobs_and_flushes_the_store(self, tmp_path):
        root = str(tmp_path / "store")
        svc = ServiceThread(root, slots=2, pool_jobs=2)
        local = ServiceClient(svc.url)
        local.submit(JobRequest(bug=BUG, seed=SEED))
        svc.close()  # same graceful path as SIGTERM
        # The running job was finished and flushed before shutdown:
        # its outcome is in the tenant store a fresh server can read.
        with ServiceThread(root) as again:
            fresh = ServiceClient(again.url)
            job_id, final = _submit_and_wait(fresh)
            assert final["state"] == "done"
            assert fresh.result(job_id)["cache_hits"] > 0

    def test_status_document_shape(self, client):
        job_id, final = _submit_and_wait(client, tenant="shape")
        assert final["id"] == job_id
        assert final["state"] == "done"
        assert final["request"]["bug"] == BUG
        assert isinstance(final["latency_s"], float)
        assert isinstance(final["seq"], int)


def test_response_json_is_sorted_and_closed(service):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        assert response.getheader("Connection") == "close"
        payload = response.read().decode("utf-8")
        doc = json.loads(payload)
        assert list(doc) == sorted(doc)
    finally:
        conn.close()
