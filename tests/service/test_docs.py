"""The documentation is held to the code, not the other way round.

Two gates:

* ``docs/service.md`` must document **exactly** the routes the server
  serves — the ``### `METHOD /path` `` headings are diffed against
  :data:`repro.service.protocol.ROUTES`, so adding an endpoint without
  documenting it (or documenting a route that does not exist) fails;
* ``tools/check_docs.py`` — the CI docs-drift gate — must pass against
  the committed tree: ``docs/cli.md`` regenerates to what is checked
  in, and every docs page is linked from the README.
"""

import re
import subprocess
import sys
from pathlib import Path

from repro.service.protocol import ROUTES

ROOT = Path(__file__).resolve().parents[2]
HEADING = re.compile(r"^### `(?P<method>[A-Z]+) (?P<path>/\S*)`$")


def _documented_routes():
    routes = []
    for line in (ROOT / "docs" / "service.md").read_text().splitlines():
        found = HEADING.match(line.strip())
        if found:
            routes.append((found.group("method"), found.group("path")))
    return routes


def test_service_doc_covers_exactly_the_served_routes():
    served = [(route.method, route.pattern) for route in ROUTES]
    documented = _documented_routes()
    missing = sorted(set(served) - set(documented))
    phantom = sorted(set(documented) - set(served))
    assert not missing, f"served but undocumented: {missing}"
    assert not phantom, f"documented but not served: {phantom}"


def test_service_doc_lists_routes_in_table_order():
    # The doc walks the API in the route table's order — keeps the
    # reference navigable and the diff against ROUTES trivial.
    assert _documented_routes() == [
        (route.method, route.pattern) for route in ROUTES
    ]


def test_docs_drift_gate_passes_on_the_committed_tree():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from check_docs import check_docs
    finally:
        sys.path.pop(0)
    problems = check_docs(ROOT)
    assert not problems, "\n".join(problems)


def test_cli_reference_regenerates_byte_identically():
    generated = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_cli_docs.py"), "--stdout"],
        capture_output=True,
        text=True,
        check=True,
        cwd=str(ROOT),
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin",
             "COLUMNS": "80"},
    ).stdout
    assert generated == (ROOT / "docs" / "cli.md").read_text()
