"""The docs must not rot: every relative link in the markdown resolves.

Backed by ``tools/check_links.py`` (the same code CI runs), so a doc
that references a moved or deleted file fails the suite, not a reader.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_links  # noqa: E402  (path set up above)


def test_readme_and_docs_have_no_dead_relative_links():
    files = check_links.default_docs(ROOT)
    assert files, "no markdown files found to check"
    problems = check_links.check_files(files)
    assert not problems, "\n".join(problems)


def test_docs_directory_is_covered():
    covered = {p.name for p in check_links.default_docs(ROOT)}
    on_disk = {p.name for p in (ROOT / "docs").glob("*.md")}
    assert on_disk <= covered
    assert "README.md" in covered


def test_checker_flags_a_dead_link(tmp_path):
    doc = tmp_path / "broken.md"
    doc.write_text("see [the guide](missing/guide.md) and "
                   "[the web](https://example.com) and [top](#anchor)")
    problems = check_links.check_files([doc])
    assert len(problems) == 1
    assert "missing/guide.md" in problems[0]


def test_checker_accepts_anchored_file_links(tmp_path):
    target = tmp_path / "real.md"
    target.write_text("# real")
    doc = tmp_path / "doc.md"
    doc.write_text("see [section](real.md#section)")
    assert check_links.check_files([doc]) == []
