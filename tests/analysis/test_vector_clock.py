"""Unit and property tests for vector clocks."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.vector_clock import VectorClock


class TestBasics:
    def test_zero_has_no_components(self):
        assert VectorClock.zero().get(0) == 0
        assert VectorClock.zero().get(99) == 0

    def test_tick_advances_one_component(self):
        vc = VectorClock.zero().tick(3)
        assert vc.get(3) == 1
        assert vc.get(2) == 0

    def test_tick_is_immutable(self):
        vc = VectorClock.zero()
        vc.tick(1)
        assert vc.get(1) == 0

    def test_join_takes_pointwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({1: 2, 2: 5, 3: 1})
        j = a.join(b)
        assert (j.get(1), j.get(2), j.get(3)) == (3, 5, 1)

    def test_zero_entries_are_dropped(self):
        vc = VectorClock({1: 0, 2: 3})
        assert vc == VectorClock({2: 3})
        assert hash(vc) == hash(VectorClock({2: 3}))

    def test_repr_readable(self):
        assert "T1:2" in repr(VectorClock({1: 2}))


class TestOrdering:
    def test_happens_before_strict(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 2})
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a)

    def test_leq_reflexive(self):
        a = VectorClock({1: 2, 2: 3})
        assert a.leq(a)

    def test_concurrent_when_incomparable(self):
        a = VectorClock({1: 2})
        b = VectorClock({2: 2})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_not_concurrent_when_ordered(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 1, 2: 4})
        assert not a.concurrent_with(b)

    def test_zero_precedes_everything_nonzero(self):
        assert VectorClock.zero().happens_before(VectorClock({1: 1}))


clocks = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=20),
    max_size=6,
).map(VectorClock)


class TestProperties:
    @given(clocks, clocks)
    def test_join_is_upper_bound(self, a, b):
        j = a.join(b)
        assert a.leq(j) and b.leq(j)

    @given(clocks, clocks)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(clocks, clocks, clocks)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(clocks)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(clocks, clocks)
    def test_exactly_one_relation_holds(self, a, b):
        relations = [
            a.happens_before(b),
            b.happens_before(a),
            a == b,
            a.concurrent_with(b),
        ]
        assert sum(relations) == 1

    @given(clocks, st.integers(min_value=0, max_value=5))
    def test_tick_strictly_advances(self, a, tid):
        assert a.happens_before(a.tick(tid))

    @given(clocks, clocks)
    def test_leq_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b
