"""Unit tests for the static concurrency analyzer.

Small hand-built guest programs exercise each finding kind — shared
access maps, races, lock protection, atomicity windows, deadlock
cycles — plus the :class:`StaticPlan` serialization and seed-gating
contracts the explorer relies on.
"""

from repro.analysis.static_ import (
    StaticPlan,
    analyze_program,
)
from repro.core.sketches import SketchKind
from repro.sim import Program


def _racy_worker(ctx, iters):
    for _ in range(iters):
        value = yield ctx.read("counter")
        yield ctx.local(1)
        yield ctx.write("counter", value + 1)


def _racy_main(ctx, nworkers, iters):
    tids = []
    for _ in range(nworkers):
        tid = yield ctx.spawn(_racy_worker, iters)
        tids.append(tid)
    for tid in tids:
        yield ctx.join(tid)
    final = yield ctx.read("counter")
    yield ctx.check(final == nworkers * iters, "lost update")


def racy_counter_program(nworkers=2, iters=2):
    return Program(
        name="racycounter",
        main=_racy_main,
        params={"nworkers": nworkers, "iters": iters},
        initial_memory={"counter": 0},
    )


def _locked_worker(ctx, iters):
    for _ in range(iters):
        yield ctx.lock("mu")
        value = yield ctx.read("counter")
        yield ctx.write("counter", value + 1)
        yield ctx.unlock("mu")


def _locked_main(ctx, nworkers, iters):
    tids = []
    for _ in range(nworkers):
        tid = yield ctx.spawn(_locked_worker, iters)
        tids.append(tid)
    for tid in tids:
        yield ctx.join(tid)
    yield ctx.check(True, "never")


def locked_counter_program(nworkers=2, iters=2):
    return Program(
        name="lockedcounter",
        main=_locked_main,
        params={"nworkers": nworkers, "iters": iters},
        initial_memory={"counter": 0},
    )


def _ab_worker(ctx):
    yield ctx.lock("A")
    yield ctx.write("x", 1)
    yield ctx.lock("B")
    yield ctx.write("y", 1)
    yield ctx.unlock("B")
    yield ctx.unlock("A")


def _ba_worker(ctx):
    yield ctx.lock("B")
    yield ctx.write("y", 2)
    yield ctx.lock("A")
    yield ctx.write("x", 2)
    yield ctx.unlock("A")
    yield ctx.unlock("B")


def _deadlock_main(ctx):
    t1 = yield ctx.spawn(_ab_worker)
    t2 = yield ctx.spawn(_ba_worker)
    yield ctx.join(t1)
    yield ctx.join(t2)
    yield ctx.check(True, "never")


def deadlock_program():
    return Program(
        name="abba",
        main=_deadlock_main,
        params={},
        initial_memory={"x": 0, "y": 0},
    )


class TestFindings:
    def test_unlocked_counter_races_are_found(self):
        plan = analyze_program(racy_counter_program())
        assert "counter" in plan.regions
        assert plan.races, "two unlocked writers must race"
        assert all(race.region == "counter" for race in plan.races)
        assert plan.violations, "read..write window must be flagged"
        assert plan.candidates

    def test_common_lock_suppresses_the_race(self):
        plan = analyze_program(locked_counter_program())
        assert not plan.races
        assert not plan.violations

    def test_lock_order_cycle_becomes_a_deadlock(self):
        plan = analyze_program(deadlock_program())
        assert plan.deadlocks
        cycle = set(plan.deadlocks[0].cycle)
        assert cycle == {"A", "B"}
        assert plan.deadlocks[0].trigger, "cycle must ship a trigger"

    def test_straight_lock_order_has_no_deadlock(self):
        plan = analyze_program(locked_counter_program())
        assert not plan.deadlocks


def _embedded_main(ctx, iters):
    tids = []
    tids.append((yield ctx.spawn(_racy_worker, iters)))
    tids.append((yield ctx.spawn(_racy_worker, iters)))
    value = yield ctx.read("counter")
    yield ctx.check(value >= 0, "lost update")


def embedded_spawn_program(iters=2):
    return Program(
        name="embedded",
        main=_embedded_main,
        params={"iters": iters},
        initial_memory={"counter": 0},
    )


class TestWalkerCoverage:
    def test_spawn_embedded_in_a_call_argument_is_still_walked(self):
        # ``tids.append((yield ctx.spawn(...)))`` must not silently drop
        # the spawned thread from the access map (over-approximation).
        plan = analyze_program(embedded_spawn_program())
        worker_tids = {role.tid for role in plan.threads if role.tid != 0}
        assert len(worker_tids) == 2
        assert plan.races, "the embedded-spawned workers still race"


class TestRanking:
    def test_max_candidates_caps_and_notes(self):
        plan = analyze_program(racy_counter_program(nworkers=3, iters=3),
                               max_candidates=2)
        assert len(plan.candidates) == 2
        assert any("capped" in note for note in plan.notes)

    def test_max_findings_caps_stored_races(self):
        full = analyze_program(racy_counter_program(nworkers=3, iters=3),
                               max_findings=10_000)
        capped = analyze_program(racy_counter_program(nworkers=3, iters=3),
                                 max_findings=1)
        assert len(full.races) > 1
        assert len(capped.races) == 1
        # the cap stores the top-scored finding
        assert capped.races[0].score == max(r.score for r in full.races)

    def test_failure_hint_is_recorded(self):
        plan = analyze_program(racy_counter_program(), failure="lost update")
        assert plan.failure == "lost update"


class TestSeedGating:
    def test_rw_sketch_ships_nothing(self):
        plan = analyze_program(racy_counter_program())
        assert plan.seeds_for(SketchKind.RW) == ()

    def test_none_sketch_ships_every_candidate(self):
        plan = analyze_program(racy_counter_program())
        seeds = plan.seeds_for(SketchKind.NONE)
        assert len(seeds) == len(plan.candidates)

    def test_lock_family_candidates_only_apply_sketchless(self):
        plan = analyze_program(deadlock_program())
        lock_cands = [c for c in plan.candidates if c.family == "lock"]
        assert lock_cands, "deadlock triggers pin lock acquisitions"
        none_seeds = set(plan.seeds_for(SketchKind.NONE))
        sync_seeds = set(plan.seeds_for(SketchKind.SYNC))
        for candidate in lock_cands:
            assert candidate.constraints in none_seeds
            assert candidate.constraints not in sync_seeds


class TestSerialization:
    def test_analysis_is_byte_deterministic(self):
        first = analyze_program(racy_counter_program()).to_json()
        second = analyze_program(racy_counter_program()).to_json()
        assert first == second

    def test_json_round_trip_preserves_the_plan(self):
        for program in (racy_counter_program(), deadlock_program()):
            plan = analyze_program(program, failure="hint")
            rebuilt = StaticPlan.from_json(plan.to_json())
            assert rebuilt == plan
            assert rebuilt.to_json() == plan.to_json()

    def test_format_tag_is_enforced(self):
        import json

        import pytest

        with pytest.raises(ValueError):
            StaticPlan.from_json(json.dumps({"format": "something-else"}))
