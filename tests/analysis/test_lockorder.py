"""Tests for Goodlock-style deadlock prediction."""

from dataclasses import dataclass
from typing import Tuple, Union

import pytest

from repro.analysis.lockorder import (
    collect_lock_order,
    find_potential_deadlocks,
    lock_order_report,
    predicts_deadlock,
)
from repro.sim.ops import OpKind
from repro.apps import get_bug
from repro.sim import Machine, Program, RandomScheduler

from tests.conftest import deadlock_program, run_program


def trace_of(main, seed=0, **kwargs):
    return Machine(Program("lo", main, **kwargs), RandomScheduler(seed)).run()


class TestEdgeCollection:
    def test_nested_acquisition_makes_an_edge(self):
        def main(ctx):
            yield ctx.lock("a")
            yield ctx.lock("b")
            yield ctx.unlock("b")
            yield ctx.unlock("a")

        report = lock_order_report(trace_of(main))
        assert ("a", "b") in report.edge_pairs()
        assert ("b", "a") not in report.edge_pairs()

    def test_sequential_acquisition_makes_no_edge(self):
        def main(ctx):
            yield ctx.lock("a")
            yield ctx.unlock("a")
            yield ctx.lock("b")
            yield ctx.unlock("b")

        assert lock_order_report(trace_of(main)).edge_pairs() == set()

    def test_cond_wait_releases_for_ordering(self):
        def waiter(ctx):
            yield ctx.lock("a")
            yield ctx.wait("cv", "a")  # releases a
            yield ctx.unlock("a")

        def main(ctx):
            tid = yield ctx.spawn(waiter)
            yield ctx.local(3)
            yield ctx.lock("a")
            yield ctx.signal("cv")
            yield ctx.unlock("a")
            yield ctx.join(tid)
            # if the wait had not released 'a', this would be a->b edge
            yield ctx.lock("b")
            yield ctx.unlock("b")

        report = lock_order_report(trace_of(main))
        assert ("a", "b") not in report.edge_pairs()

    def test_rwlock_acquisitions_participate(self):
        def main(ctx):
            yield ctx.wrlock("rw")
            yield ctx.lock("m")
            yield ctx.unlock("m")
            yield ctx.rwunlock("rw")

        report = lock_order_report(trace_of(main))
        assert ("rw", "m") in report.edge_pairs()


class TestCycleDetection:
    def test_single_thread_nesting_is_not_a_deadlock(self):
        def main(ctx):
            yield ctx.lock("a")
            yield ctx.lock("b")
            yield ctx.unlock("b")
            yield ctx.unlock("a")
            yield ctx.lock("b")
            yield ctx.lock("a")
            yield ctx.unlock("a")
            yield ctx.unlock("b")

        # one thread creating both edges cannot deadlock with itself
        report = lock_order_report(trace_of(main))
        assert report.potential_deadlocks == []

    def test_two_thread_inversion_predicted_from_clean_run(self):
        program = deadlock_program()
        # find a seed where the run completes WITHOUT deadlocking
        for seed in range(100):
            trace = run_program(program, seed)
            if not trace.failed:
                report = lock_order_report(trace)
                assert report.potential_deadlocks, "inversion not predicted"
                cycle = report.potential_deadlocks[0]
                assert set(cycle.cycle) == {"A", "B"}
                assert len(cycle.tids) == 2
                assert predicts_deadlock(trace, "A", "B")
                return
        pytest.fail("no clean run found")

    def test_three_lock_cycle(self):
        def worker(ctx, first, second):
            yield ctx.lock(first)
            yield ctx.lock(second)
            yield ctx.unlock(second)
            yield ctx.unlock(first)

        def main(ctx):
            # a->b, b->c, c->a across three threads, sequentially (no
            # actual deadlock in this run)
            for first, second in (("a", "b"), ("b", "c"), ("c", "a")):
                tid = yield ctx.spawn(worker, first, second)
                yield ctx.join(tid)

        report = lock_order_report(trace_of(main))
        assert report.potential_deadlocks
        assert set(report.potential_deadlocks[0].cycle) == {"a", "b", "c"}

    def test_consistent_ordering_reports_nothing(self):
        def worker(ctx):
            yield ctx.lock("a")
            yield ctx.lock("b")
            yield ctx.unlock("b")
            yield ctx.unlock("a")

        def main(ctx):
            t1 = yield ctx.spawn(worker)
            t2 = yield ctx.spawn(worker)
            yield ctx.join(t1)
            yield ctx.join(t2)

        report = lock_order_report(trace_of(main))
        assert report.potential_deadlocks == []
        assert "no cycles" in report.describe()


@dataclass(frozen=True)
class _Ev:
    """Minimal event-like record for driving the source-agnostic sweep."""

    tid: int
    kind: OpKind
    obj: Union[str, Tuple[str, str]]
    value: object = None
    gidx: int = 0


def _script(*steps):
    """Build events from (tid, kind, obj[, value]) tuples, gidx = position."""
    events = []
    for gidx, step in enumerate(steps):
        tid, kind, obj = step[:3]
        value = step[3] if len(step) > 3 else None
        events.append(_Ev(tid=tid, kind=kind, obj=obj, value=value, gidx=gidx))
    return events


class TestSweepEdgeCases:
    def test_recursive_reacquisition_makes_no_self_edge(self):
        events = _script(
            (1, OpKind.LOCK, "a"),
            (1, OpKind.LOCK, "a"),  # recursive: same thread, same lock
            (1, OpKind.LOCK, "b"),
        )
        edges = collect_lock_order(events)
        assert all(e.holder != e.acquired for e in edges)
        assert {(e.holder, e.acquired) for e in edges} == {("a", "b")}

    def test_occurrence_numbers_count_per_thread_acquisitions(self):
        events = _script(
            (1, OpKind.LOCK, "m"),
            (1, OpKind.UNLOCK, "m"),
            (1, OpKind.LOCK, "m"),  # second acquisition of m by T1
            (1, OpKind.LOCK, "n"),
        )
        (edge,) = collect_lock_order(events)
        assert (edge.holder, edge.acquired) == ("m", "n")
        assert edge.holder_occurrence == 2
        assert edge.acquired_occurrence == 1

    def test_failed_trylock_makes_no_edge_but_success_does(self):
        failed = _script(
            (1, OpKind.LOCK, "a"),
            (1, OpKind.TRYLOCK, "b", False),
        )
        assert collect_lock_order(failed) == []
        succeeded = _script(
            (1, OpKind.LOCK, "a"),
            (1, OpKind.TRYLOCK, "b", True),
        )
        assert {(e.holder, e.acquired) for e in collect_lock_order(succeeded)} == {
            ("a", "b")
        }

    def test_four_lock_cycle_across_four_threads(self):
        hops = (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"))
        steps = []
        for tid, (first, second) in enumerate(hops, start=1):
            steps.extend(
                (
                    (tid, OpKind.LOCK, first),
                    (tid, OpKind.LOCK, second),
                    (tid, OpKind.UNLOCK, second),
                    (tid, OpKind.UNLOCK, first),
                )
            )
        cycles, gated = find_potential_deadlocks(collect_lock_order(_script(*steps)))
        assert gated == 0
        assert len(cycles) == 1
        assert set(cycles[0].cycle) == {"a", "b", "c", "d"}
        assert cycles[0].tids == (1, 2, 3, 4)

    def test_gate_lock_suppresses_the_cycle(self):
        steps = []
        for tid, (first, second) in ((1, ("a", "b")), (2, ("b", "a"))):
            steps.extend(
                (
                    (tid, OpKind.LOCK, "gate"),
                    (tid, OpKind.LOCK, first),
                    (tid, OpKind.LOCK, second),
                    (tid, OpKind.UNLOCK, second),
                    (tid, OpKind.UNLOCK, first),
                    (tid, OpKind.UNLOCK, "gate"),
                )
            )
        cycles, gated = find_potential_deadlocks(collect_lock_order(_script(*steps)))
        assert cycles == []
        assert gated == 1

    def test_partially_gated_cycle_is_still_reported(self):
        steps = [
            # T1 takes the inversion under the gate ...
            (1, OpKind.LOCK, "gate"),
            (1, OpKind.LOCK, "a"),
            (1, OpKind.LOCK, "b"),
            (1, OpKind.UNLOCK, "b"),
            (1, OpKind.UNLOCK, "a"),
            (1, OpKind.UNLOCK, "gate"),
            # ... but T2 inverts without holding it: interleavable.
            (2, OpKind.LOCK, "b"),
            (2, OpKind.LOCK, "a"),
            (2, OpKind.UNLOCK, "a"),
            (2, OpKind.UNLOCK, "b"),
        ]
        cycles, gated = find_potential_deadlocks(collect_lock_order(_script(*steps)))
        assert gated == 0
        assert len(cycles) == 1
        assert set(cycles[0].cycle) == {"a", "b"}

    def test_gated_cycle_count_surfaces_in_report(self):
        def holder(ctx, first, second):
            yield ctx.lock("gate")
            yield ctx.lock(first)
            yield ctx.lock(second)
            yield ctx.unlock(second)
            yield ctx.unlock(first)
            yield ctx.unlock("gate")

        def main(ctx):
            for first, second in (("a", "b"), ("b", "a")):
                tid = yield ctx.spawn(holder, first, second)
                yield ctx.join(tid)

        report = lock_order_report(trace_of(main))
        assert report.potential_deadlocks == []
        assert report.gated_cycles == 1


class TestOnTheSuite:
    def test_openldap_deadlock_predicted_from_clean_trace(self):
        spec = get_bug("openldap-deadlock")
        program = spec.make_program()
        for seed in range(100):
            trace = run_program(program, seed)
            if trace.failed:
                continue
            # the writer must actually have touched a connection this run
            if predicts_deadlock(trace, "writer_mu"):
                report = lock_order_report(trace)
                assert any(
                    "writer_mu" in p.cycle for p in report.potential_deadlocks
                )
                return
        pytest.fail("no clean run exhibited the inversion edges")

    def test_fixed_openldap_has_no_cycle(self):
        spec = get_bug("openldap-deadlock")
        program = spec.make_fixed_program()
        for seed in range(30):
            trace = run_program(program, seed)
            assert not trace.failed
            assert lock_order_report(trace).potential_deadlocks == []

    def test_describe_names_the_cycle(self):
        program = deadlock_program()
        for seed in range(100):
            trace = run_program(program, seed)
            if not trace.failed:
                text = lock_order_report(trace).describe()
                assert "potential deadlock" in text
                return
        pytest.fail("no clean run found")
