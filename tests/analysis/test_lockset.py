"""Tests for the Eraser-style lockset detector."""

from repro.analysis import lockset_report
from repro.sim import Machine, Program, RandomScheduler

from tests.conftest import counter_program, run_program


def trace_of(main, seed=0, **kwargs):
    return Machine(Program("t", main, **kwargs), RandomScheduler(seed)).run()


class TestLockset:
    def test_consistently_locked_address_is_clean(self):
        def worker(ctx):
            yield ctx.lock("m")
            value = yield ctx.read("x")
            yield ctx.write("x", value + 1)
            yield ctx.unlock("m")

        def main(ctx):
            a = yield ctx.spawn(worker)
            b = yield ctx.spawn(worker)
            yield ctx.join(a)
            yield ctx.join(b)

        report = lockset_report(trace_of(main, initial_memory={"x": 0}))
        prot = report.by_address["x"]
        assert "m" in prot.candidate_set
        assert not prot.inconsistent

    def test_join_ordered_read_is_an_eraser_false_positive(self):
        # Lockset analysis is flow-insensitive: main's final read after
        # joining the workers is perfectly ordered, but it empties the
        # candidate set anyway.  This documents the classic Eraser
        # limitation (the HB detector gets this right).
        trace = run_program(counter_program(locked=True), 1)
        report = lockset_report(trace)
        assert "counter" in report.inconsistent_addresses()

    def test_unlocked_shared_write_flagged(self):
        trace = run_program(counter_program(locked=False), 1)
        report = lockset_report(trace)
        assert "counter" in report.inconsistent_addresses()

    def test_single_thread_address_not_flagged(self):
        def main(ctx):
            yield ctx.write("private", 1)
            yield ctx.write("private", 2)

        report = lockset_report(trace_of(main))
        assert report.inconsistent_addresses() == []
        prot = report.by_address["private"]
        assert len(prot.accessing_tids) == 1

    def test_read_only_shared_address_not_flagged(self):
        def reader(ctx):
            yield ctx.read("config")

        def main(ctx):
            a = yield ctx.spawn(reader)
            b = yield ctx.spawn(reader)
            yield ctx.join(a)
            yield ctx.join(b)

        report = lockset_report(trace_of(main, initial_memory={"config": 7}))
        prot = report.by_address["config"]
        assert not prot.written
        assert not prot.inconsistent

    def test_candidate_set_intersects_across_accesses(self):
        def worker_ab(ctx):
            yield ctx.lock("a")
            yield ctx.lock("b")
            yield ctx.write("x", 1)
            yield ctx.unlock("b")
            yield ctx.unlock("a")

        def worker_b(ctx):
            yield ctx.lock("b")
            yield ctx.write("x", 2)
            yield ctx.unlock("b")

        def main(ctx):
            t1 = yield ctx.spawn(worker_ab)
            t2 = yield ctx.spawn(worker_b)
            yield ctx.join(t1)
            yield ctx.join(t2)

        report = lockset_report(trace_of(main, initial_memory={"x": 0}))
        assert report.by_address["x"].candidate_set == frozenset({"b"})

    def test_access_counts_recorded(self):
        trace = run_program(counter_program(nworkers=2, iters=3), 0)
        report = lockset_report(trace)
        # 2 workers x (3 reads + 3 writes) + main's final read
        assert report.by_address["counter"].accesses == 13

    def test_cond_wait_releases_lock_for_lockset(self):
        def waiter(ctx):
            yield ctx.lock("m")
            yield ctx.wait("cv", "m")
            yield ctx.write("x", 1)  # holds m again here (re-acquired)
            yield ctx.unlock("m")

        def main(ctx):
            tid = yield ctx.spawn(waiter)
            yield ctx.local(2)
            yield ctx.lock("m")
            yield ctx.write("x", 2)
            yield ctx.signal("cv")
            yield ctx.unlock("m")
            yield ctx.join(tid)

        report = lockset_report(trace_of(main, initial_memory={"x": 0}))
        assert report.by_address["x"].candidate_set == frozenset({"m"})
