"""Tests for the ASCII timeline renderer."""

from repro.analysis.timeline import failure_window, render_timeline
from repro.sim.ops import OpKind

from tests.conftest import (
    counter_program,
    find_seed,
    order_violation_program,
    run_program,
)


class TestRenderTimeline:
    def test_one_column_per_thread(self):
        trace = run_program(counter_program(nworkers=2, iters=2), 1)
        text = render_timeline(trace)
        header = text.splitlines()[0]
        for tid in trace.tids():
            assert f"T{tid}" in header

    def test_each_visible_event_gets_a_row(self):
        trace = run_program(counter_program(nworkers=2, iters=2), 1)
        text = render_timeline(trace, hide=())
        # +2 for header and divider
        assert len(text.splitlines()) == len(trace.events) + 2

    def test_default_filter_hides_local_noise(self):
        trace = run_program(counter_program(nworkers=2, iters=2), 1)
        text = render_timeline(trace)
        assert "local" not in text

    def test_window_bounds_respected(self):
        trace = run_program(counter_program(nworkers=2, iters=4), 1)
        text = render_timeline(trace, start=5, end=10, hide=())
        steps = [
            int(line.split()[0])
            for line in text.splitlines()[2:]
            if line.strip()
        ]
        assert steps and min(steps) >= 5 and max(steps) <= 9

    def test_mark_flags_the_event(self):
        trace = run_program(counter_program(), 1)
        target = trace.events[3].gidx
        text = render_timeline(trace, hide=(), mark=target)
        marked = [line for line in text.splitlines() if "<- here" in line]
        assert len(marked) == 1
        assert marked[0].lstrip().startswith(str(target))

    def test_long_cells_truncated(self):
        trace = run_program(counter_program(), 1)
        text = render_timeline(trace, hide=(), max_cell_width=8)
        for line in text.splitlines()[2:]:
            for token in line.split("  "):
                assert len(token.strip()) <= 12  # cell + padding slack

    def test_empty_window(self):
        trace = run_program(counter_program(), 1)
        assert "no events" in render_timeline(trace, start=10_000)


class TestFailureWindow:
    def test_marks_the_failure(self):
        program = order_violation_program()
        trace = run_program(program, find_seed(program))
        text = failure_window(trace)
        assert "<- here" in text
        assert "assert" in text

    def test_clean_trace_shows_the_tail(self):
        trace = run_program(counter_program(), 0)
        text = failure_window(trace)
        assert "step" in text
