"""Static analysis over-approximates the dynamic sanitizer — T1 suite.

The static walker's soundness stance (see
:mod:`repro.analysis.static_.extract`) is that its access map is a
superset of any dynamic execution's.  The checkable consequence: every
race the *dynamic* sanitizer predicts from a rich (RW) recording must
appear in the static race set, at (thread-pair, region) granularity —
the static side names regions via
:func:`repro.core.constraints.region_key`, so a dynamic race on a
concrete address ``("row", 3)`` matches a static race on the region
head ``"row"``.

``max_findings`` is raised because the containment claim is about the
full over-approximation, not the stored top-N slice a default plan
keeps for reports.
"""

import pytest

from repro.analysis.static_ import analyze_program
from repro.apps import all_bugs
from repro.bench.seeds import find_failing_seed
from repro.core.constraints import region_key
from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sanitize import build_plan
from repro.sim.machine import MachineConfig


def _static_race_keys(spec):
    plan = analyze_program(spec.make_program(), max_findings=100_000)
    return {
        (frozenset((race.first.tid, race.second.tid)), race.region)
        for race in plan.races
    }


@pytest.mark.parametrize(
    "spec", all_bugs(), ids=lambda spec: spec.bug_id
)
def test_dynamic_race_predictions_are_contained_in_static(spec):
    seed = find_failing_seed(spec, ncpus=4)
    assert seed is not None, f"{spec.bug_id}: no failing seed"
    recorded = record(
        spec.make_program(),
        sketch=SketchKind.RW,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )
    dynamic = build_plan(recorded.log)
    static_keys = _static_race_keys(spec)
    missing = []
    for race in dynamic.races:
        key = (
            frozenset((race.first.tid, race.second.tid)),
            region_key(race.addr),
        )
        if key not in static_keys:
            missing.append(race.describe())
    assert not missing, (
        f"{spec.bug_id}: dynamic races absent from the static "
        f"over-approximation:\n" + "\n".join(missing)
    )
