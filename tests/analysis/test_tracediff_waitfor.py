"""Tests for trace diffing and wait-for graphs."""

from repro.analysis import WaitForGraph, first_divergence, same_execution
from repro.sim import FixedOrderScheduler, Machine

from tests.conftest import counter_program, run_program


class TestTraceDiff:
    def test_identical_traces_have_no_divergence(self):
        a = run_program(counter_program(), 4)
        b = run_program(counter_program(), 4)
        assert first_divergence(a, b) is None
        assert same_execution(a, b)

    def test_different_schedules_diverge(self):
        a = run_program(counter_program(), 0)
        b = run_program(counter_program(), 1)
        if a.schedule == b.schedule:  # unlikely; pick another seed
            b = run_program(counter_program(), 2)
        div = first_divergence(a, b)
        assert div is not None
        assert div.index <= min(len(a.events), len(b.events))
        assert "diverge at event" in div.describe()

    def test_prefix_divergence_at_shorter_length(self):
        full = run_program(counter_program(), 4)
        truncated = Machine(
            counter_program(), FixedOrderScheduler(full.schedule[:10])
        ).run()
        div = first_divergence(full, truncated)
        assert div is not None
        assert div.index == 10
        assert div.right is None  # the truncated side ended

    def test_replay_is_same_execution_with_values(self):
        original = run_program(counter_program(), 4)
        replay = Machine(
            counter_program(), FixedOrderScheduler(original.schedule)
        ).run()
        assert same_execution(original, replay, check_values=True)


class TestWaitForGraph:
    def test_no_cycle_in_chain(self):
        g = WaitForGraph()
        g.add_wait(1, 2, "m1")
        g.add_wait(2, 3, "m2")
        assert g.find_cycle() == []
        assert "no deadlock" in g.describe()

    def test_two_cycle(self):
        g = WaitForGraph()
        g.add_wait(1, 2, "A")
        g.add_wait(2, 1, "B")
        cycle = g.find_cycle()
        assert sorted(cycle) == [1, 2]
        assert g.cycle_resources() == ["A", "B"]
        assert "deadlock" in g.describe()

    def test_three_cycle_with_tail(self):
        g = WaitForGraph()
        g.add_wait(0, 1, "t")  # tail into the cycle
        g.add_wait(1, 2, "x")
        g.add_wait(2, 3, "y")
        g.add_wait(3, 1, "z")
        cycle = g.find_cycle()
        assert sorted(cycle) == [1, 2, 3]

    def test_self_wait_is_a_cycle(self):
        g = WaitForGraph()
        g.add_wait(5, 5, "m")
        assert g.find_cycle() == [5]

    def test_waiting_pairs_sorted(self):
        g = WaitForGraph()
        g.add_wait(3, 1)
        g.add_wait(1, 2)
        assert g.waiting_pairs() == [(1, 2), (3, 1)]
