"""``pres analyze --static`` output, pinned by a golden file.

The analyzer is a pure function of the program source, so the CLI
report is byte-for-byte reproducible; the golden file at
``tests/fixtures/static_analyze_golden.txt`` is the contract for the
report layout.  Regenerate it by running this module as a script::

    PYTHONPATH=src python tests/analysis/test_static_golden.py
"""

from __future__ import annotations

import json
import pathlib

from repro.cli import main

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "fixtures"
    / "static_analyze_golden.txt"
)
BUG = "pbzip2-order-free"


def _render(capsys) -> str:
    assert main(["analyze", BUG, "--static"]) == 0
    return capsys.readouterr().out


def test_static_analyze_matches_golden(capsys):
    assert _render(capsys) == GOLDEN.read_text(encoding="utf-8")


def test_static_analyze_json_mode_is_a_full_plan(capsys):
    assert main(["analyze", BUG, "--static", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "pres-static-plan-v1"
    assert payload["program"] == BUG
    assert payload["candidates"]


if __name__ == "__main__":
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["analyze", BUG, "--static"]) == 0
    GOLDEN.write_text(buffer.getvalue(), encoding="utf-8")
    print(f"wrote {GOLDEN}")
