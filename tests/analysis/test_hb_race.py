"""Tests for the happens-before race detector.

Each synchronization primitive gets a pair of programs: one where it
orders the conflicting accesses (no race may be reported) and one where
it does not (the race must be found).
"""

import pytest

from repro.analysis import HBAnalysis, find_races
from repro.sim import Machine, Program, RandomScheduler

from tests.conftest import counter_program, run_program


def trace_of(main, seed=0, **program_kwargs):
    program = Program("t", main, **program_kwargs)
    return Machine(program, RandomScheduler(seed)).run()


class TestBasicRaces:
    def test_unlocked_counter_races(self):
        trace = run_program(counter_program(locked=False), 3)
        races = find_races(trace)
        assert races
        assert all(r.addr == "counter" for r in races)

    def test_locked_counter_has_no_races(self):
        trace = run_program(counter_program(locked=True), 3)
        assert find_races(trace) == []

    def test_race_pair_ordered_by_gidx(self):
        trace = run_program(counter_program(locked=False), 3)
        for race in find_races(trace):
            assert race.first.gidx < race.second.gidx

    def test_read_read_is_not_a_race(self):
        def reader(ctx):
            yield ctx.read("x")
            yield ctx.read("x")

        def main(ctx):
            a = yield ctx.spawn(reader)
            b = yield ctx.spawn(reader)
            yield ctx.join(a)
            yield ctx.join(b)

        trace = trace_of(main, initial_memory={"x": 1})
        assert find_races(trace) == []

    def test_same_thread_accesses_never_race(self):
        def main(ctx):
            yield ctx.write("x", 1)
            yield ctx.write("x", 2)
            yield ctx.read("x")

        assert find_races(trace_of(main)) == []

    def test_atomics_still_conflict(self):
        def bump(ctx):
            yield ctx.rmw("n", lambda v: v + 1)

        def main(ctx):
            a = yield ctx.spawn(bump)
            b = yield ctx.spawn(bump)
            yield ctx.join(a)
            yield ctx.join(b)

        trace = trace_of(main, initial_memory={"n": 0})
        races = find_races(trace)
        assert len(races) == 1  # the two RMWs are unordered


class TestSyncEdges:
    def test_mutex_handoff_orders_accesses(self):
        def writer(ctx):
            yield ctx.lock("m")
            yield ctx.write("x", 1)
            yield ctx.unlock("m")

        def main(ctx):
            tid = yield ctx.spawn(writer)
            yield ctx.lock("m")
            yield ctx.read("x")
            yield ctx.unlock("m")
            yield ctx.join(tid)

        trace = trace_of(main, initial_memory={"x": 0})
        assert find_races(trace) == []

    def test_spawn_edge_orders_parent_writes(self):
        def child(ctx):
            yield ctx.read("x")

        def main(ctx):
            yield ctx.write("x", 1)  # before spawn: ordered
            tid = yield ctx.spawn(child)
            yield ctx.join(tid)

        assert find_races(trace_of(main)) == []

    def test_join_edge_orders_child_writes(self):
        def child(ctx):
            yield ctx.write("x", 1)

        def main(ctx):
            tid = yield ctx.spawn(child)
            yield ctx.join(tid)
            yield ctx.read("x")  # after join: ordered

        assert find_races(trace_of(main)) == []

    def test_unjoined_child_write_races_with_parent_read(self):
        def child(ctx):
            yield ctx.write("x", 1)

        def main(ctx):
            tid = yield ctx.spawn(child)
            yield ctx.read("x")  # no join first
            yield ctx.join(tid)

        # Across seeds, some order both ways; the race must be reported
        # regardless of which side won.
        for seed in range(5):
            trace = trace_of(main, seed=seed, initial_memory={"x": 0})
            races = [r for r in find_races(trace) if r.addr == "x"]
            assert len(races) == 1

    def test_semaphore_release_acquire_orders(self):
        def producer(ctx):
            yield ctx.write("x", 42)
            yield ctx.sem_release("s")

        def main(ctx):
            tid = yield ctx.spawn(producer)
            yield ctx.sem_acquire("s")
            yield ctx.read("x")
            yield ctx.join(tid)

        trace = trace_of(main, initial_memory={"x": 0}, semaphores={"s": 0})
        assert find_races(trace) == []

    def test_channel_send_recv_orders(self):
        def producer(ctx):
            yield ctx.write("x", 42)
            yield ctx.syscall("send", "ch", "ready")

        def main(ctx):
            tid = yield ctx.spawn(producer)
            yield ctx.syscall("recv", "ch")
            yield ctx.read("x")
            yield ctx.join(tid)

        trace = trace_of(main, initial_memory={"x": 0})
        assert find_races(trace) == []

    def test_barrier_orders_across_participants(self):
        def worker(ctx, i):
            yield ctx.write(("a", i), 1)
            yield ctx.barrier("b")
            yield ctx.read(("a", 1 - i))

        def main(ctx):
            t0 = yield ctx.spawn(worker, 0)
            t1 = yield ctx.spawn(worker, 1)
            yield ctx.join(t0)
            yield ctx.join(t1)

        for seed in range(5):
            trace = trace_of(
                main,
                seed=seed,
                initial_memory={("a", 0): 0, ("a", 1): 0},
                barriers={"b": 2},
            )
            assert find_races(trace) == []

    def test_condvar_signal_orders_waker_writes(self):
        def waiter(ctx):
            yield ctx.lock("m")
            while True:
                ready = yield ctx.read("ready")
                if ready:
                    break
                yield ctx.wait("cv", "m")
            yield ctx.unlock("m")
            yield ctx.read("x")  # outside the lock: ordered only via signal

        def main(ctx):
            tid = yield ctx.spawn(waiter)
            yield ctx.write("x", 1)
            yield ctx.lock("m")
            yield ctx.write("ready", True)
            yield ctx.signal("cv")
            yield ctx.unlock("m")
            yield ctx.join(tid)

        for seed in range(8):
            trace = trace_of(
                main, seed=seed, initial_memory={"x": 0, "ready": False}
            )
            races = [r for r in find_races(trace) if r.addr == "x"]
            assert races == [], (seed, [r.describe() for r in races])


class TestFreeRaces:
    def test_free_races_with_cell_access(self):
        def freer(ctx):
            yield ctx.local(1)
            yield ctx.free("buf")

        def user(ctx):
            yield ctx.read(("buf", 0))

        def main(ctx):
            a = yield ctx.spawn(user)
            b = yield ctx.spawn(freer)
            yield ctx.join(a)
            yield ctx.join(b)

        # pick a seed where the read happens first (no crash) and the
        # race must still be detected
        for seed in range(30):
            trace = trace_of(main, seed=seed, initial_memory={("buf", 0): 1})
            if not trace.failed:
                races = find_races(trace)
                assert any(
                    r.first.addr == ("buf", 0) or r.second.addr == "buf"
                    for r in races
                )
                return
        pytest.fail("no crash-free schedule found")


class TestLockEdgeToggle:
    def test_disabling_lock_edges_exposes_protected_races(self):
        trace = run_program(counter_program(locked=True), 3)
        assert find_races(trace, use_lock_edges=True) == []
        unlocked_view = find_races(trace, use_lock_edges=False)
        assert unlocked_view

    def test_race_carries_held_locks(self):
        trace = run_program(counter_program(locked=True), 3)
        races = find_races(trace, use_lock_edges=False)
        race = races[0]
        commons = race.common_mutexes()
        assert commons
        (first_lock, second_lock) = commons[0]
        assert first_lock[0] == "m" and second_lock[0] == "m"
        assert first_lock[1] != second_lock[1]  # different acquisitions


class TestAnalysisAPI:
    def test_event_vcs_aligned_with_events(self):
        trace = run_program(counter_program(), 1)
        analysis = HBAnalysis(trace)
        assert len(analysis.event_vcs) == len(trace.events)

    def test_program_order_reflected_in_vcs(self):
        trace = run_program(counter_program(), 1)
        analysis = HBAnalysis(trace)
        for tid in trace.tids():
            events = trace.events_of(tid)
            for earlier, later in zip(events, events[1:]):
                assert analysis.ordered(earlier.gidx, later.gidx)

    def test_max_races_caps_output(self):
        trace = run_program(counter_program(nworkers=3, iters=5), 2)
        races = find_races(trace, max_races=3)
        assert len(races) == 3

    def test_races_involving_filters_by_address(self):
        trace = run_program(counter_program(), 3)
        analysis = HBAnalysis(trace)
        assert analysis.races_involving("counter") == analysis.races
        assert analysis.races_involving("other") == []
