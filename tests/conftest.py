"""Shared fixtures and program builders used across the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Machine, MachineConfig, Program, RandomScheduler
from repro.sim.trace import Trace


# ---------------------------------------------------------------------------
# Small reference programs.  Each builder returns a fresh Program; thread
# bodies are module-level so traces are comparable across runs.
# ---------------------------------------------------------------------------


def _counter_worker(ctx, n, locked):
    for _ in range(n):
        if locked:
            yield ctx.lock("m")
        value = yield ctx.read("counter")
        yield ctx.local(1)
        yield ctx.write("counter", value + 1)
        if locked:
            yield ctx.unlock("m")
    return n


def _counter_main(ctx, nworkers, iters, locked):
    tids = []
    for _ in range(nworkers):
        tid = yield ctx.spawn(_counter_worker, iters, locked)
        tids.append(tid)
    total = 0
    for tid in tids:
        value = yield ctx.join(tid)
        total += value
    final = yield ctx.read("counter")
    yield ctx.output(("counter", final, "expected", total))


def counter_program(nworkers: int = 2, iters: int = 3, locked: bool = False) -> Program:
    """N workers incrementing a shared counter, optionally under a lock."""
    return Program(
        name="counter",
        main=_counter_main,
        params={"nworkers": nworkers, "iters": iters, "locked": locked},
        initial_memory={"counter": 0},
    )


def _pc_producer(ctx, n):
    for i in range(n):
        yield ctx.lock("m")
        queue = yield ctx.read("queue")
        yield ctx.write("queue", queue + [i])
        yield ctx.signal("cv")
        yield ctx.unlock("m")
    return n


def _pc_consumer(ctx, n):
    got = []
    for _ in range(n):
        yield ctx.lock("m")
        while True:
            queue = yield ctx.read("queue")
            if queue:
                break
            yield ctx.wait("cv", "m")
        yield ctx.write("queue", queue[1:])
        got.append(queue[0])
        yield ctx.unlock("m")
    return got


def _pc_main(ctx, n):
    consumer = yield ctx.spawn(_pc_consumer, n)
    producer = yield ctx.spawn(_pc_producer, n)
    got = yield ctx.join(consumer)
    yield ctx.join(producer)
    yield ctx.check(got == list(range(n)), "fifo order broken")


def producer_consumer_program(n: int = 3) -> Program:
    """A correct condvar-based bounded producer/consumer."""
    return Program(
        name="prodcons",
        main=_pc_main,
        params={"n": n},
        initial_memory={"queue": []},
    )


def _dl_left(ctx):
    yield ctx.lock("A")
    yield ctx.local(1)
    yield ctx.lock("B")
    yield ctx.unlock("B")
    yield ctx.unlock("A")


def _dl_right(ctx):
    yield ctx.lock("B")
    yield ctx.local(1)
    yield ctx.lock("A")
    yield ctx.unlock("A")
    yield ctx.unlock("B")


def _dl_main(ctx):
    left = yield ctx.spawn(_dl_left)
    right = yield ctx.spawn(_dl_right)
    yield ctx.join(left)
    yield ctx.join(right)


def deadlock_program() -> Program:
    """Classic AB/BA lock inversion; deadlocks on some schedules."""
    return Program(name="abba", main=_dl_main)


def _ov_producer(ctx):
    yield ctx.local(2)
    yield ctx.write("data", 42)


def _ov_consumer(ctx):
    yield ctx.local(1)
    value = yield ctx.read("data")
    yield ctx.check(value == 42, "read unpublished data")


def _ov_main(ctx):
    producer = yield ctx.spawn(_ov_producer)
    consumer = yield ctx.spawn(_ov_consumer)
    yield ctx.join(producer)
    yield ctx.join(consumer)


def order_violation_program() -> Program:
    """Unordered publish/consume pair; fails when the consumer wins."""
    return Program(
        name="orderviolation",
        main=_ov_main,
        initial_memory={"data": 0},
    )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def run_program(program: Program, seed: int = 0, ncpus: int = 4,
                max_steps: int = 200_000) -> Trace:
    """Run once under a seeded random scheduler."""
    machine = Machine(
        program,
        RandomScheduler(seed),
        MachineConfig(ncpus=ncpus, max_steps=max_steps),
    )
    return machine.run()


def find_seed(program: Program, want_failure: bool = True, limit: int = 300) -> int:
    """First seed whose run fails (or succeeds, with want_failure=False)."""
    for seed in range(limit):
        trace = run_program(program, seed)
        if trace.failed == want_failure:
            return seed
    raise AssertionError(
        f"no seed in [0, {limit}) produced failed={want_failure} for "
        f"{program.name}"
    )


@pytest.fixture
def counter() -> Program:
    return counter_program()


@pytest.fixture
def prodcons() -> Program:
    return producer_consumer_program()


@pytest.fixture
def abba() -> Program:
    return deadlock_program()


@pytest.fixture
def orderviolation() -> Program:
    return order_violation_program()
