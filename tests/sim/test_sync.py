"""Unit tests for synchronization object state machines."""

import pytest

from repro.errors import SimSyncError
from repro.sim.sync import Barrier, CondVar, Mutex, Semaphore, SyncTable


class TestMutex:
    def test_acquire_sets_owner(self):
        m = Mutex("m")
        m.acquire(3)
        assert m.owner == 3
        assert not m.is_free

    def test_release_frees(self):
        m = Mutex("m")
        m.acquire(3)
        m.release(3)
        assert m.is_free

    def test_double_acquire_raises(self):
        m = Mutex("m")
        m.acquire(1)
        with pytest.raises(SimSyncError, match="already held"):
            m.acquire(2)

    def test_non_reentrant(self):
        m = Mutex("m")
        m.acquire(1)
        with pytest.raises(SimSyncError):
            m.acquire(1)

    def test_release_by_non_owner_raises(self):
        m = Mutex("m")
        m.acquire(1)
        with pytest.raises(SimSyncError, match="owned by 1"):
            m.release(2)

    def test_release_unheld_raises(self):
        m = Mutex("m")
        with pytest.raises(SimSyncError):
            m.release(1)


class TestCondVar:
    def test_wake_one_is_fifo(self):
        cv = CondVar("cv")
        cv.add_waiter(5)
        cv.add_waiter(6)
        assert cv.wake_one() == 5
        assert cv.wake_one() == 6

    def test_wake_one_empty_returns_none(self):
        assert CondVar("cv").wake_one() is None

    def test_wake_all_drains(self):
        cv = CondVar("cv")
        cv.add_waiter(1)
        cv.add_waiter(2)
        assert cv.wake_all() == [1, 2]
        assert cv.waiters == []

    def test_wake_all_empty(self):
        assert CondVar("cv").wake_all() == []


class TestSemaphore:
    def test_acquire_decrements(self):
        s = Semaphore("s", count=2)
        s.acquire(1)
        assert s.count == 1
        assert s.available

    def test_release_increments(self):
        s = Semaphore("s", count=0)
        s.release()
        assert s.available

    def test_acquire_at_zero_raises(self):
        s = Semaphore("s", count=0)
        with pytest.raises(SimSyncError, match="at zero"):
            s.acquire(1)


class TestBarrier:
    def test_trips_on_last_arrival(self):
        b = Barrier("b", parties=3)
        assert b.arrive(1) is False
        assert b.arrive(2) is False
        assert b.arrive(3) is True

    def test_release_returns_arrivals_and_resets(self):
        b = Barrier("b", parties=2)
        b.arrive(1)
        b.arrive(2)
        assert b.release() == [1, 2]
        assert b.arrived == []
        assert b.generation == 1

    def test_reusable_across_generations(self):
        b = Barrier("b", parties=2)
        b.arrive(1)
        b.arrive(2)
        b.release()
        assert b.arrive(1) is False
        assert b.arrive(2) is True
        b.release()
        assert b.generation == 2

    def test_zero_parties_raises(self):
        b = Barrier("b", parties=0)
        with pytest.raises(SimSyncError):
            b.arrive(1)


class TestSyncTable:
    def test_mutexes_autocreate(self):
        table = SyncTable()
        assert table.mutex("m").name == "m"
        assert table.mutex("m") is table.mutex("m")

    def test_conds_autocreate(self):
        table = SyncTable()
        assert table.cond("cv") is table.cond("cv")

    def test_semaphores_require_declaration(self):
        table = SyncTable(semaphores={"s": 2})
        assert table.semaphore("s").count == 2
        with pytest.raises(SimSyncError, match="not declared"):
            table.semaphore("undeclared")

    def test_barriers_require_declaration(self):
        table = SyncTable(barriers={"b": 3})
        assert table.barrier("b").parties == 3
        with pytest.raises(SimSyncError, match="not declared"):
            table.barrier("undeclared")

    def test_held_mutexes(self):
        table = SyncTable()
        table.mutex("a").acquire(1)
        table.mutex("b").acquire(2)
        table.mutex("c").acquire(1)
        assert table.held_mutexes(1) == ["a", "c"]
        assert table.held_mutexes(2) == ["b"]
        assert table.held_mutexes(3) == []
