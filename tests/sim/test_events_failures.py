"""Unit tests for Event records and the failure taxonomy."""

from repro.sim.events import Event
from repro.sim.failures import Failure, FailureKind
from repro.sim.ops import Op, OpKind


class TestEvent:
    def test_from_op_copies_fields(self):
        op = Op(OpKind.WRITE, addr="x", value=5)
        event = Event.from_op(3, tid=1, cpu=2, op=op, value=5)
        assert event.gidx == 3
        assert event.tid == 1
        assert event.cpu == 2
        assert event.kind is OpKind.WRITE
        assert event.addr == "x"
        assert event.value == 5

    def test_syscall_args_preserved(self):
        op = Op(OpKind.SYSCALL, name="send", args=("ch", "m"))
        event = Event.from_op(0, 1, 0, op, value=None)
        assert event.args == ("ch", "m")

    def test_non_syscall_args_dropped(self):
        op = Op(OpKind.SPAWN, func=None, args=(1, 2), name="w")
        event = Event.from_op(0, 1, 0, op, value=7)
        assert event.args == ()

    def test_signature_excludes_position_and_value(self):
        op = Op(OpKind.READ, addr="x")
        a = Event.from_op(1, 2, 0, op, value=10)
        b = Event.from_op(99, 2, 3, op, value=20)
        assert a.signature() == b.signature()

    def test_signature_distinguishes_threads(self):
        op = Op(OpKind.READ, addr="x")
        assert (
            Event.from_op(0, 1, 0, op).signature()
            != Event.from_op(0, 2, 0, op).signature()
        )

    def test_signature_distinguishes_addresses(self):
        a = Event.from_op(0, 1, 0, Op(OpKind.READ, addr="x"))
        b = Event.from_op(0, 1, 0, Op(OpKind.READ, addr="y"))
        assert a.signature() != b.signature()

    def test_describe_mentions_thread_and_kind(self):
        event = Event.from_op(7, 3, 0, Op(OpKind.LOCK, obj="m"))
        text = event.describe()
        assert "T3" in text and "lock" in text and "#7" in text


class TestFailure:
    def test_signature_is_kind_and_where(self):
        f = Failure(FailureKind.ASSERTION, where="invariant broken", tid=2, gidx=9)
        assert f.signature() == ("assertion", "invariant broken")

    def test_matches_same_bug_different_position(self):
        a = Failure(FailureKind.ASSERTION, where="x", gidx=10)
        b = Failure(FailureKind.ASSERTION, where="x", gidx=99, tid=5)
        assert a.matches(b) and b.matches(a)

    def test_different_where_does_not_match(self):
        a = Failure(FailureKind.ASSERTION, where="x")
        b = Failure(FailureKind.ASSERTION, where="y")
        assert not a.matches(b)

    def test_different_kind_does_not_match(self):
        a = Failure(FailureKind.ASSERTION, where="x")
        b = Failure(FailureKind.CRASH, where="x")
        assert not a.matches(b)

    def test_hang_and_timeout_are_interchangeable(self):
        hang = Failure(FailureKind.HANG, where="no runnable thread")
        timeout = Failure(FailureKind.TIMEOUT, where="step budget exhausted")
        assert hang.matches(timeout) and timeout.matches(hang)

    def test_deadlock_matches_on_cycle_resources(self):
        a = Failure(FailureKind.DEADLOCK, where="cycle:A,B")
        b = Failure(FailureKind.DEADLOCK, where="cycle:A,B", involved_tids=(1, 2))
        c = Failure(FailureKind.DEADLOCK, where="cycle:A,C")
        assert a.matches(b)
        assert not a.matches(c)

    def test_describe_includes_location(self):
        f = Failure(FailureKind.CRASH, where="boom", tid=4, gidx=17, detail="ouch")
        text = f.describe()
        assert "crash" in text and "T4" in text and "17" in text and "ouch" in text
