"""Integration-grade unit tests for the machine's execution semantics."""

import pytest

from repro.errors import SimUsageError
from repro.sim import (
    FixedOrderScheduler,
    Machine,
    MachineConfig,
    Program,
    RandomScheduler,
)
from repro.sim.failures import FailureKind
from repro.sim.ops import OpKind

from tests.conftest import (
    counter_program,
    deadlock_program,
    producer_consumer_program,
    run_program,
)


def run(program, seed=0, **cfg):
    return Machine(program, RandomScheduler(seed), MachineConfig(**cfg)).run()


class TestLifecycle:
    def test_single_thread_program(self):
        def main(ctx):
            yield ctx.write("x", 1)
            value = yield ctx.read("x")
            return value

        trace = run(Program("p", main))
        assert not trace.failed
        assert trace.thread_returns[0] == 1
        assert trace.final_memory["x"] == 1

    def test_spawn_returns_fresh_tids(self):
        def child(ctx):
            yield ctx.local()

        def main(ctx):
            a = yield ctx.spawn(child)
            b = yield ctx.spawn(child)
            yield ctx.join(a)
            yield ctx.join(b)
            return (a, b)

        trace = run(Program("p", main))
        assert trace.thread_returns[0] == (1, 2)

    def test_join_returns_child_value(self):
        def child(ctx, n):
            yield ctx.local()
            return n * 2

        def main(ctx):
            tid = yield ctx.spawn(child, 21)
            value = yield ctx.join(tid)
            yield ctx.check(value == 42, "join value")

        assert not run(Program("p", main)).failed

    def test_machine_is_single_use(self):
        def main(ctx):
            yield ctx.local()

        machine = Machine(Program("p", main), RandomScheduler(0))
        machine.run()
        with pytest.raises(SimUsageError, match="single-use"):
            machine.run()

    def test_yielding_non_op_is_usage_error(self):
        def main(ctx):
            yield "not an op"

        with pytest.raises(SimUsageError, match="must yield Op"):
            Machine(Program("p", main), RandomScheduler(0)).run()


class TestMutexSemantics:
    def test_lock_blocks_second_thread(self):
        # With the lock held for the worker's whole body, increments can
        # never interleave: the counter is exact on every schedule.
        program = counter_program(nworkers=3, iters=4, locked=True)
        for seed in range(15):
            trace = run(program, seed)
            assert trace.final_memory["counter"] == 12

    def test_unlocked_counter_loses_updates_on_some_schedule(self):
        program = counter_program(nworkers=3, iters=4, locked=False)
        results = {run(program, seed).final_memory["counter"] for seed in range(30)}
        assert any(v < 12 for v in results), "expected at least one lost update"

    def test_unlock_without_ownership_crashes_thread(self):
        def main(ctx):
            yield ctx.unlock("m")

        trace = run(Program("p", main))
        assert trace.failed
        assert trace.failure.kind is FailureKind.CRASH

    def test_trylock_returns_false_when_held(self):
        def holder(ctx):
            yield ctx.lock("m")
            yield ctx.write("held", True)
            while True:  # hold the mutex until main saw the trylock fail
                proceed = yield ctx.read("proceed")
                if proceed:
                    break
                yield ctx.cpu_yield()
            yield ctx.unlock("m")

        def main(ctx):
            tid = yield ctx.spawn(holder)
            # Spin until the holder has the lock, then trylock must fail.
            while True:
                held = yield ctx.read("held")
                if held:
                    break
                yield ctx.cpu_yield()
            got = yield ctx.trylock("m")
            yield ctx.check(got is False, "trylock should fail while held")
            yield ctx.write("proceed", True)
            yield ctx.join(tid)
            got = yield ctx.trylock("m")
            yield ctx.check(got is True, "trylock should succeed once free")

        program = Program(
            "p", main, initial_memory={"held": False, "proceed": False}
        )
        trace = run(program)
        assert not trace.failed, trace.failure and trace.failure.describe()


class TestCondVars:
    def test_producer_consumer_correct_on_all_seeds(self):
        program = producer_consumer_program(n=4)
        for seed in range(25):
            trace = run(program, seed)
            assert not trace.failed, (seed, trace.failure.describe())

    def test_wait_reacquires_lock_as_separate_event(self):
        program = producer_consumer_program(n=1)
        # Find a schedule where the consumer actually waited.
        for seed in range(50):
            trace = run(program, seed)
            waits = [e for e in trace.events if e.kind is OpKind.COND_WAIT]
            if waits:
                wait = waits[0]
                later_locks = [
                    e
                    for e in trace.events[wait.gidx + 1:]
                    if e.tid == wait.tid and e.kind is OpKind.LOCK
                    and e.obj == wait.obj[1]
                ]
                assert later_locks, "woken waiter must re-acquire the mutex"
                return
        pytest.fail("no schedule made the consumer wait")

    def test_signal_records_woken_tid(self):
        program = producer_consumer_program(n=1)
        for seed in range(50):
            trace = run(program, seed)
            waits = [e for e in trace.events if e.kind is OpKind.COND_WAIT]
            if waits:
                signals = [
                    e for e in trace.events
                    if e.kind is OpKind.COND_SIGNAL and e.value is not None
                ]
                assert signals and signals[0].value == waits[0].tid
                return
        pytest.fail("no schedule made the consumer wait")

    def test_lost_wakeup_is_a_hang(self):
        def waiter(ctx):
            yield ctx.lock("m")
            yield ctx.wait("cv", "m")  # nobody will signal
            yield ctx.unlock("m")

        def main(ctx):
            tid = yield ctx.spawn(waiter)
            yield ctx.join(tid)

        trace = run(Program("p", main))
        assert trace.failed
        assert trace.failure.kind is FailureKind.HANG

    def test_broadcast_wakes_everyone(self):
        def waiter(ctx):
            yield ctx.lock("m")
            yield ctx.rmw("waiting", lambda v: v + 1)
            yield ctx.wait("cv", "m")
            yield ctx.unlock("m")
            return "woke"

        def main(ctx):
            a = yield ctx.spawn(waiter)
            b = yield ctx.spawn(waiter)
            while True:
                n = yield ctx.read("waiting")
                if n == 2:
                    break
                yield ctx.cpu_yield()
            yield ctx.lock("m")
            woken = yield ctx.broadcast("cv")
            yield ctx.unlock("m")
            ra = yield ctx.join(a)
            rb = yield ctx.join(b)
            yield ctx.check(set(woken) == {a, b}, "broadcast coverage")
            yield ctx.check((ra, rb) == ("woke", "woke"), "both woke")

        # 'waiting' increments under the lock, but the main thread polls
        # it racily on purpose; waiting==2 still implies both are either
        # waiting or about to wait holding nothing - safe to broadcast
        # only once both actually wait, so re-run across seeds.
        failures = []
        for seed in range(10):
            trace = run(Program("p", main, initial_memory={"waiting": 0}), seed)
            if trace.failed and trace.failure.kind is not FailureKind.HANG:
                failures.append((seed, trace.failure.describe()))
        assert not failures


class TestSemaphoresAndBarriers:
    def test_semaphore_bounds_concurrency(self):
        def worker(ctx):
            yield ctx.sem_acquire("slots")
            inside = yield ctx.rmw("inside", lambda v: v + 1)
            yield ctx.check(inside + 1 <= 2, "semaphore bound exceeded")
            yield ctx.local(3)
            yield ctx.rmw("inside", lambda v: v - 1)
            yield ctx.sem_release("slots")

        def main(ctx):
            tids = []
            for _ in range(4):
                tid = yield ctx.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield ctx.join(tid)

        program = Program(
            "p", main, initial_memory={"inside": 0}, semaphores={"slots": 2}
        )
        for seed in range(15):
            trace = run(program, seed)
            assert not trace.failed, (seed, trace.failure.describe())

    def test_barrier_separates_phases(self):
        def worker(ctx, i, n):
            yield ctx.write(("phase1", i), True)
            yield ctx.barrier("b")
            for j in range(n):
                done = yield ctx.read(("phase1", j))
                yield ctx.check(done, f"worker {j} missed the barrier")

        def main(ctx, n):
            tids = []
            for i in range(n):
                tid = yield ctx.spawn(worker, i, n)
                tids.append(tid)
            for tid in tids:
                yield ctx.join(tid)

        n = 3
        memory = {("phase1", i): False for i in range(n)}
        program = Program(
            "p", main, params={"n": n}, initial_memory=memory, barriers={"b": n}
        )
        for seed in range(20):
            trace = run(program, seed)
            assert not trace.failed, (seed, trace.failure.describe())

    def test_barrier_wait_value_marks_the_tripping_arrival(self):
        def worker(ctx):
            yield ctx.barrier("b")

        def main(ctx):
            a = yield ctx.spawn(worker)
            b = yield ctx.spawn(worker)
            yield ctx.join(a)
            yield ctx.join(b)

        trace = run(Program("p", main, barriers={"b": 2}))
        arrivals = [e for e in trace.events if e.kind is OpKind.BARRIER_WAIT]
        assert len(arrivals) == 2
        assert arrivals[0].value is None  # first arrival waits
        assert arrivals[1].value == 1  # second trips generation 1


class TestFailures:
    def test_assert_failure_stops_the_run(self):
        def main(ctx):
            yield ctx.check(False, "always fails")
            yield ctx.write("after", True)  # must never execute

        trace = run(Program("p", main))
        assert trace.failed
        assert trace.failure.kind is FailureKind.ASSERTION
        assert trace.failure.where == "always fails"
        assert "after" not in trace.final_memory

    def test_assert_failure_points_at_its_event(self):
        def main(ctx):
            yield ctx.local()
            yield ctx.check(False, "boom")

        trace = run(Program("p", main))
        assert trace.failure.gidx == trace.events[-1].gidx

    def test_app_exception_becomes_crash(self):
        def main(ctx):
            yield ctx.local()
            raise ValueError("app bug")

        trace = run(Program("p", main))
        assert trace.failed
        assert trace.failure.kind is FailureKind.CRASH
        assert "app bug" in trace.failure.where

    def test_memory_crash_site_uses_region(self):
        def main(ctx):
            yield ctx.free("buf")
            yield ctx.read(("buf", 3))

        trace = run(Program("p", main, initial_memory={("buf", 3): 1}))
        assert trace.failed
        assert trace.failure.kind is FailureKind.CRASH
        assert "region 'buf'" in trace.failure.where
        assert "use after free" in trace.failure.where

    def test_deadlock_detected_with_cycle_resources(self):
        program = deadlock_program()
        for seed in range(60):
            trace = run_program(program, seed)
            if trace.failed:
                assert trace.failure.kind is FailureKind.DEADLOCK
                assert trace.failure.where == "cycle:A,B"
                assert len(trace.failure.involved_tids) == 2
                return
        pytest.fail("deadlock never manifested in 60 seeds")

    def test_step_budget_exhaustion_is_timeout(self):
        def main(ctx):
            while True:
                yield ctx.local()

        trace = run(Program("p", main), max_steps=50)
        assert trace.failed
        assert trace.failure.kind is FailureKind.TIMEOUT
        assert trace.steps == 50


class TestDeterminism:
    def test_same_seed_same_trace(self, prodcons):
        a = run_program(prodcons, 11)
        b = run_program(prodcons, 11)
        assert a.schedule == b.schedule
        assert [e.signature() for e in a.events] == [e.signature() for e in b.events]
        assert [e.value for e in a.events] == [e.value for e in b.events]
        assert a.final_memory == b.final_memory
        assert a.stdout == b.stdout

    def test_different_seeds_usually_differ(self, counter):
        schedules = {tuple(run_program(counter, s).schedule) for s in range(10)}
        assert len(schedules) > 1

    def test_fixed_order_replays_exactly(self, prodcons):
        original = run_program(prodcons, 13)
        machine = Machine(
            prodcons, FixedOrderScheduler(original.schedule), MachineConfig(ncpus=4)
        )
        replay = machine.run()
        assert replay.schedule == original.schedule
        assert [e.signature() for e in replay.events] == [
            e.signature() for e in original.events
        ]
        assert replay.final_memory == original.final_memory

    def test_syscall_results_replay_deterministically(self):
        def main(ctx):
            a = yield ctx.rand(1000)
            b = yield ctx.rand(1000)
            yield ctx.output((a, b))

        program = Program("p", main)
        t1 = run(program, 3)
        t2 = Machine(program, FixedOrderScheduler(t1.schedule)).run()
        assert t1.stdout == t2.stdout


class TestTraceContents:
    def test_every_step_emits_one_event(self, counter):
        trace = run_program(counter, 5)
        assert len(trace.events) == len(trace.schedule)

    def test_event_gidx_is_dense(self, counter):
        trace = run_program(counter, 5)
        assert [e.gidx for e in trace.events] == list(range(len(trace.events)))

    def test_schedule_matches_event_tids(self, counter):
        trace = run_program(counter, 5)
        assert trace.schedule == [e.tid for e in trace.events]

    def test_stdout_captured(self, counter):
        trace = run_program(counter, 0)
        assert trace.stdout and trace.stdout[0][0] == "counter"

    def test_files_captured(self):
        def main(ctx):
            yield ctx.syscall("write_file", "log", "entry")

        trace = run(Program("p", main))
        assert trace.files == {"log": ["entry"]}

    def test_initial_files_visible(self):
        def main(ctx):
            value = yield ctx.syscall("read_file", "docs", 0)
            yield ctx.output(value)

        program = Program("p", main, initial_files={"docs": ["hello"]})
        assert run(program).stdout == ["hello"]

    def test_clock_summary_attached(self, counter):
        trace = run_program(counter, 1)
        assert trace.clock is not None
        assert trace.clock.native_time > 0
        # No recorder attached: the two clocks agree.
        assert trace.clock.recorded_time == trace.clock.native_time
