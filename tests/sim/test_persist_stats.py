"""Tests for trace persistence and trace statistics."""

import io

import pytest

from repro.analysis import find_races, same_execution
from repro.errors import SketchFormatError
from repro.sim import FixedOrderScheduler, Machine
from repro.sim.persist import dump_trace, load_trace, read_trace, save_trace
from repro.sim.stats import trace_stats

from tests.conftest import (
    counter_program,
    deadlock_program,
    find_seed,
    producer_consumer_program,
    run_program,
)


def round_trip(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    return load_trace(buffer)


class TestPersistence:
    def test_round_trip_preserves_events(self):
        trace = run_program(producer_consumer_program(3), 7)
        restored = round_trip(trace)
        assert len(restored.events) == len(trace.events)
        for a, b in zip(trace.events, restored.events):
            assert a.signature() == b.signature()
            assert a.value == b.value
            assert a.args == b.args
        assert restored.schedule == trace.schedule
        assert restored.final_memory == trace.final_memory
        assert restored.stdout == trace.stdout
        assert restored.files == trace.files
        assert restored.thread_returns == trace.thread_returns

    def test_tuple_addresses_survive(self):
        trace = run_program(counter_program(), 1)
        # synthesize tuple addresses via an app-like program
        from repro.apps import get_bug

        trace = run_program(get_bug("fft-order-sync").make_program(), 2)
        restored = round_trip(trace)
        tuple_addrs = [
            e.addr for e in restored.events if isinstance(e.addr, tuple)
        ]
        assert tuple_addrs, "expected tuple addresses"
        assert restored.final_memory == trace.final_memory

    def test_failure_survives(self):
        program = deadlock_program()
        trace = run_program(program, find_seed(program))
        restored = round_trip(trace)
        assert restored.failure is not None
        assert restored.failure.signature() == trace.failure.signature()
        assert restored.failure.involved_tids == trace.failure.involved_tids

    def test_clock_survives(self):
        trace = run_program(counter_program(), 1)
        restored = round_trip(trace)
        assert restored.clock.native_time == trace.clock.native_time
        assert restored.clock.per_cpu_native == trace.clock.per_cpu_native

    def test_analyses_work_on_restored_trace(self):
        trace = run_program(counter_program(locked=False), 3)
        restored = round_trip(trace)
        assert len(find_races(restored)) == len(find_races(trace))
        assert same_execution(trace, restored)

    def test_restored_schedule_re_executes(self):
        program = counter_program()
        trace = run_program(program, 5)
        restored = round_trip(trace)
        replay = Machine(program, FixedOrderScheduler(restored.schedule)).run()
        assert [e.signature() for e in replay.events] == [
            e.signature() for e in trace.events
        ]

    def test_file_round_trip(self, tmp_path):
        trace = run_program(counter_program(), 1)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, str(path))
        restored = read_trace(str(path))
        assert same_execution(trace, restored)

    def test_bad_header_rejected(self):
        with pytest.raises(SketchFormatError, match="not a PRES trace"):
            load_trace(io.StringIO('{"format": "other"}\n'))

    def test_corrupt_header_rejected(self):
        with pytest.raises(SketchFormatError, match="corrupt trace header"):
            load_trace(io.StringIO("not json\n"))

    def test_corrupt_event_rejected(self):
        trace = run_program(counter_program(), 1)
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        text = buffer.getvalue().splitlines()
        text[3] = "garbage"
        with pytest.raises(SketchFormatError, match="corrupt trace event"):
            load_trace(io.StringIO("\n".join(text)))


class TestStats:
    def test_counts_add_up(self):
        trace = run_program(counter_program(nworkers=2, iters=3), 4)
        stats = trace_stats(trace)
        assert stats.total_events == len(trace.events)
        assert sum(stats.by_kind.values()) == stats.total_events
        assert sum(stats.per_thread.values()) == stats.total_events

    def test_densities(self):
        trace = run_program(producer_consumer_program(3), 4)
        stats = trace_stats(trace)
        assert 0 < stats.sync_density < 1000
        assert 0 < stats.memory_density < 1000

    def test_contended_lock_detected(self):
        trace = run_program(producer_consumer_program(4), 4)
        stats = trace_stats(trace)
        assert "m" in stats.contended_locks()
        assert stats.locks["m"].acquisitions >= 2

    def test_uncontended_lock_not_flagged(self):
        def main(ctx):
            yield ctx.lock("solo")
            yield ctx.unlock("solo")
            yield ctx.lock("solo")
            yield ctx.unlock("solo")

        from repro.sim import Program, RandomScheduler

        trace = Machine(Program("p", main), RandomScheduler(0)).run()
        stats = trace_stats(trace)
        assert stats.locks["solo"].acquisitions == 2
        assert stats.contended_locks() == []

    def test_scientific_apps_have_low_sync_density(self):
        from repro.apps import get_bug

        fft = trace_stats(run_program(get_bug("fft-order-sync").make_program(), 2))
        ldap = trace_stats(
            run_program(get_bug("openldap-deadlock").make_program(), 5)
        )
        assert fft.sync_density < ldap.sync_density

    def test_describe(self):
        trace = run_program(producer_consumer_program(3), 4)
        text = trace_stats(trace).describe()
        assert "events" in text and "sync density" in text
