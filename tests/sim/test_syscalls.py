"""Unit tests for the simulated kernel."""

import pytest

from repro.errors import SimSyscallError
from repro.sim.syscalls import Kernel


class TestStdout:
    def test_write_stdout_captures(self):
        k = Kernel()
        k.execute("write_stdout", ("hello",), now=0)
        k.execute("write_stdout", (2,), now=0)
        assert k.stdout == ["hello", 2]


class TestFiles:
    def test_write_returns_record_index(self):
        k = Kernel()
        assert k.execute("write_file", ("log", "a"), now=0) == 0
        assert k.execute("write_file", ("log", "b"), now=0) == 1

    def test_read_file(self):
        k = Kernel()
        k.execute("write_file", ("log", "a"), now=0)
        assert k.execute("read_file", ("log", 0), now=0) == "a"

    def test_read_out_of_range_raises(self):
        k = Kernel()
        with pytest.raises(SimSyscallError, match="out of range"):
            k.execute("read_file", ("log", 0), now=0)

    def test_file_len(self):
        k = Kernel()
        assert k.execute("file_len", ("log",), now=0) == 0
        k.execute("write_file", ("log", "a"), now=0)
        assert k.execute("file_len", ("log",), now=0) == 1

    def test_seed_files(self):
        k = Kernel()
        k.seed_files({"htdocs": ["index", "about"]})
        assert k.execute("read_file", ("htdocs", 1), now=0) == "about"
        assert k.file_contents("htdocs") == ["index", "about"]

    def test_file_names(self):
        k = Kernel()
        k.execute("write_file", ("b", 1), now=0)
        k.execute("write_file", ("a", 1), now=0)
        assert k.file_names() == ["b", "a"]


class TestChannels:
    def test_send_recv_fifo(self):
        k = Kernel()
        k.execute("send", ("ch", "x"), now=0)
        k.execute("send", ("ch", "y"), now=0)
        assert k.execute("recv", ("ch",), now=0) == "x"
        assert k.execute("recv", ("ch",), now=0) == "y"

    def test_recv_blocks_while_empty(self):
        k = Kernel()
        assert k.can_execute("recv", ("ch",)) is False
        k.execute("send", ("ch", 1), now=0)
        assert k.can_execute("recv", ("ch",)) is True

    def test_recv_on_empty_is_kernel_bug(self):
        # The machine must gate recv with can_execute; executing anyway
        # is a hard error rather than silent misbehavior.
        k = Kernel()
        with pytest.raises(SimSyscallError, match="empty channel"):
            k.execute("recv", ("ch",), now=0)

    def test_try_recv_returns_none_when_empty(self):
        k = Kernel()
        assert k.execute("try_recv", ("ch",), now=0) is None

    def test_try_recv_consumes(self):
        k = Kernel()
        k.execute("send", ("ch", 9), now=0)
        assert k.execute("try_recv", ("ch",), now=0) == 9
        assert k.execute("try_recv", ("ch",), now=0) is None

    def test_chan_len(self):
        k = Kernel()
        k.execute("send", ("ch", 1), now=0)
        k.execute("send", ("ch", 2), now=0)
        assert k.execute("chan_len", ("ch",), now=0) == 2

    def test_non_blocking_syscalls_always_executable(self):
        k = Kernel()
        for name in ("send", "write_stdout", "rand", "now", "sleep"):
            assert k.can_execute(name, (1,)) is True


class TestMisc:
    def test_rand_in_range_and_deterministic(self):
        draws_a = [Kernel(seed=5).execute("rand", (10,), now=0) for _ in range(1)]
        k1, k2 = Kernel(seed=5), Kernel(seed=5)
        seq1 = [k1.execute("rand", (10,), now=0) for _ in range(20)]
        seq2 = [k2.execute("rand", (10,), now=0) for _ in range(20)]
        assert seq1 == seq2
        assert all(0 <= v < 10 for v in seq1)

    def test_rand_different_seeds_differ(self):
        seq1 = [Kernel(seed=1).execute("rand", (1000,), now=0) for _ in range(1)]
        k1, k2 = Kernel(seed=1), Kernel(seed=2)
        a = [k1.execute("rand", (1000,), now=0) for _ in range(10)]
        b = [k2.execute("rand", (1000,), now=0) for _ in range(10)]
        assert a != b

    def test_rand_requires_positive(self):
        with pytest.raises(SimSyscallError):
            Kernel().execute("rand", (0,), now=0)

    def test_now_returns_machine_time(self):
        assert Kernel().execute("now", (), now=42) == 42

    def test_sleep_validates_duration(self):
        k = Kernel()
        k.execute("sleep", (5,), now=0)  # fine
        with pytest.raises(SimSyscallError):
            k.execute("sleep", (-1,), now=0)

    def test_unknown_syscall_raises(self):
        with pytest.raises(SimSyscallError, match="unknown syscall"):
            Kernel().execute("fork_bomb", (), now=0)

    def test_bad_arity_raises(self):
        with pytest.raises(SimSyscallError, match="bad arguments"):
            Kernel().execute("send", ("only-one-arg",), now=0)

    def test_syscall_count_increments(self):
        k = Kernel()
        k.execute("now", (), now=0)
        k.execute("send", ("c", 1), now=0)
        assert k.syscall_count == 2
