"""Unit tests for Trace accessors."""

from repro.sim.ops import OpKind

from tests.conftest import counter_program, run_program


class TestAccessors:
    def test_len_and_iter(self):
        trace = run_program(counter_program(), 0)
        assert len(trace) == len(trace.events)
        assert list(trace) == trace.events

    def test_events_of_preserves_program_order(self):
        trace = run_program(counter_program(), 0)
        for tid in trace.tids():
            events = trace.events_of(tid)
            assert all(e.tid == tid for e in events)
            assert [e.gidx for e in events] == sorted(e.gidx for e in events)

    def test_events_at_address(self):
        trace = run_program(counter_program(), 0)
        events = trace.events_at("counter")
        assert events
        assert all(e.addr == "counter" for e in events)

    def test_tids_sorted(self):
        trace = run_program(counter_program(nworkers=3), 0)
        assert trace.tids() == sorted(trace.tids())
        assert 0 in trace.tids()

    def test_count_kind(self):
        trace = run_program(counter_program(nworkers=2, iters=3), 0)
        # each worker: 3 reads of counter; main: 1 final read
        assert trace.count_kind(OpKind.READ) == 2 * 3 + 1
        assert trace.count_kind(OpKind.SPAWN) == 2

    def test_access_index_counts_per_thread_address(self):
        trace = run_program(counter_program(nworkers=2, iters=3), 0)
        index = trace.access_index()
        workers = [tid for tid in trace.tids() if tid != 0]
        for tid in workers:
            # 3 reads + 3 writes of 'counter' per worker
            assert index[(tid, "counter")] == 6
        assert index[(0, "counter")] == 1

    def test_describe_summarizes(self):
        trace = run_program(counter_program(), 0)
        text = trace.describe(limit=5)
        assert "counter" in text
        assert "events" in text
        assert "more" in text  # truncation marker


class TestThreadNames:
    def test_trace_carries_body_names(self):
        trace = run_program(counter_program(nworkers=2), 0)
        assert trace.thread_names[0] == "_counter_main"
        assert trace.thread_names[1] == "_counter_worker"

    def test_thread_label(self):
        trace = run_program(counter_program(), 0)
        assert trace.thread_label(1) == "T1:_counter_worker"
        assert trace.thread_label(99) == "T99"

    def test_timeline_headers_use_labels(self):
        from repro.analysis import render_timeline

        trace = run_program(counter_program(), 0)
        header = render_timeline(trace).splitlines()[0]
        assert "_counter_worker" in header

    def test_names_survive_persistence(self):
        import io
        from repro.sim.persist import dump_trace, load_trace

        trace = run_program(counter_program(), 0)
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert load_trace(buffer).thread_names == trace.thread_names
