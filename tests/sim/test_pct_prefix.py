"""Tests for the PCT scheduler and prefix replay."""

import pytest

from repro.errors import ReplayDivergence
from repro.sim import (
    Machine,
    MachineConfig,
    PCTScheduler,
    PrefixScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

from tests.conftest import (
    counter_program,
    deadlock_program,
    order_violation_program,
    run_program,
)


class TestPCTScheduler:
    def test_deterministic_per_seed(self):
        program = counter_program(nworkers=3, iters=4)
        a = Machine(program, PCTScheduler(7)).run()
        b = Machine(program, PCTScheduler(7)).run()
        assert a.schedule == b.schedule

    def test_different_seeds_vary(self):
        program = counter_program(nworkers=3, iters=4)
        schedules = {
            tuple(Machine(program, PCTScheduler(seed)).run().schedule)
            for seed in range(8)
        }
        assert len(schedules) > 1

    def test_runs_programs_to_completion(self):
        program = counter_program(nworkers=2, iters=3)
        trace = Machine(program, PCTScheduler(3)).run()
        assert not trace.failed
        assert trace.final_memory["counter"] >= 1

    def test_depth_one_is_strict_priority(self):
        # With no change points, the highest-priority thread runs until
        # it blocks - so the schedule has long same-thread runs.
        program = counter_program(nworkers=3, iters=5)
        trace = Machine(program, PCTScheduler(5, depth=1)).run()
        switches = sum(
            1 for a, b in zip(trace.schedule, trace.schedule[1:]) if a != b
        )
        random_trace = run_program(program, 5)
        random_switches = sum(
            1
            for a, b in zip(random_trace.schedule, random_trace.schedule[1:])
            if a != b
        )
        assert switches < random_switches

    def test_finds_ordering_bugs_efficiently(self):
        # PCT's selling point: for a depth-1 ordering bug, a large
        # fraction of priority assignments trigger it.
        program = order_violation_program()
        pct_hits = sum(
            1
            for seed in range(40)
            if Machine(program, PCTScheduler(seed)).run().failed
        )
        assert pct_hits > 0

    def test_describe(self):
        assert "depth=3" in PCTScheduler(1).describe()


class TestPrefixScheduler:
    def test_prefix_then_policy(self):
        program = counter_program(nworkers=2, iters=3)
        original = run_program(program, 9)
        half = len(original.schedule) // 2
        scheduler = PrefixScheduler(original.schedule[:half], RandomScheduler(1))
        trace = Machine(program, scheduler, MachineConfig(ncpus=4)).run()
        assert trace.schedule[:half] == original.schedule[:half]
        assert not trace.diverged

    def test_empty_prefix_is_just_the_policy(self):
        program = counter_program()
        a = Machine(program, PrefixScheduler([], RandomScheduler(4))).run()
        b = run_program(program, 4)
        assert a.schedule == b.schedule

    def test_bad_prefix_diverges(self):
        program = counter_program()
        trace = Machine(program, PrefixScheduler([99], RandomScheduler(0))).run()
        assert trace.diverged
        assert "not runnable" in trace.divergence

    def test_reusable_across_runs(self):
        program = counter_program()
        original = run_program(program, 2)
        scheduler = PrefixScheduler(original.schedule[:5], RoundRobinScheduler())
        t1 = Machine(program, scheduler).run()
        t2 = Machine(program, scheduler).run()
        assert t1.schedule == t2.schedule

    def test_what_if_exploration_from_captured_prefix(self):
        # The intended workflow: replay a captured failure's schedule up
        # to just before the failing event, then vary the ending - some
        # endings still fail, and (for this bug) some survive.
        program = order_violation_program()
        failing = None
        for seed in range(60):
            trace = run_program(program, seed)
            if trace.failed:
                failing = trace
                break
        assert failing is not None
        cut = max(0, failing.failure.gidx - 2)
        outcomes = set()
        for seed in range(20):
            scheduler = PrefixScheduler(
                failing.schedule[:cut], RandomScheduler(seed)
            )
            trace = Machine(program, scheduler, MachineConfig(ncpus=4)).run()
            assert not trace.diverged
            outcomes.add(trace.failed)
        assert True in outcomes  # the bad ending is reachable

    def test_describe(self):
        scheduler = PrefixScheduler([1, 2], RandomScheduler(3))
        assert "2 steps" in scheduler.describe()
