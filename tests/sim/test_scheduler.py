"""Unit tests for schedulers."""

import pytest

from repro.errors import ReplayDivergence, SchedulerError
from repro.sim import Machine, Program, RandomScheduler, RoundRobinScheduler
from repro.sim.scheduler import FixedOrderScheduler, Scheduler, validate_pick

from tests.conftest import counter_program, run_program


class TestRandomScheduler:
    def test_same_seed_same_choices(self):
        a, b = RandomScheduler(4), RandomScheduler(4)
        picks_a = [a.pick(None, (1, 2, 3)) for _ in range(30)]
        picks_b = [b.pick(None, (1, 2, 3)) for _ in range(30)]
        assert picks_a == picks_b

    def test_reusable_across_runs(self):
        scheduler = RandomScheduler(9)
        program = counter_program()
        t1 = Machine(program, scheduler).run()
        scheduler2 = RandomScheduler(9)
        t2 = Machine(program, scheduler2).run()
        # on_run_start re-arms the RNG, so reuse equals a fresh instance
        program2 = counter_program()
        t3 = Machine(program2, scheduler).run()
        assert t1.schedule == t2.schedule == t3.schedule

    def test_covers_all_choices_eventually(self):
        scheduler = RandomScheduler(0)
        picks = {scheduler.pick(None, (1, 2, 3)) for _ in range(100)}
        assert picks == {1, 2, 3}

    def test_describe_mentions_seed(self):
        assert "seed=7" in RandomScheduler(7).describe()


class TestRoundRobin:
    def test_cycles_through_runnable(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.pick(None, (1, 2, 3)) for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_skips_missing_tids(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick(None, (1, 3)) == 1
        assert scheduler.pick(None, (1, 3)) == 3
        assert scheduler.pick(None, (1, 3)) == 1

    def test_deterministic_execution(self):
        program = counter_program()
        t1 = Machine(program, RoundRobinScheduler()).run()
        t2 = Machine(program, RoundRobinScheduler()).run()
        assert t1.schedule == t2.schedule


class TestFixedOrder:
    def test_replays_given_schedule(self):
        original = run_program(counter_program(), seed=3)
        replay = Machine(
            counter_program(), FixedOrderScheduler(original.schedule)
        ).run()
        assert replay.schedule == original.schedule

    def test_wrong_tid_raises_divergence(self):
        scheduler = FixedOrderScheduler([99])
        with pytest.raises(ReplayDivergence, match="not runnable"):
            scheduler.pick(None, (0, 1))

    def test_exhausted_log_raises_divergence(self):
        scheduler = FixedOrderScheduler([])
        with pytest.raises(ReplayDivergence, match="exhausted"):
            scheduler.pick(None, (0,))

    def test_divergence_is_captured_on_the_trace(self):
        # Replaying a truncated schedule ends with a divergence marker,
        # not an exception.
        original = run_program(counter_program(), seed=3)
        truncated = original.schedule[: len(original.schedule) // 2]
        trace = Machine(counter_program(), FixedOrderScheduler(truncated)).run()
        assert trace.diverged
        assert "exhausted" in trace.divergence

    def test_on_run_start_rewinds(self):
        original = run_program(counter_program(), seed=3)
        scheduler = FixedOrderScheduler(original.schedule)
        t1 = Machine(counter_program(), scheduler).run()
        t2 = Machine(counter_program(), scheduler).run()
        assert not t1.diverged and not t2.diverged


class TestValidation:
    def test_validate_pick_accepts_member(self):
        validate_pick(2, (1, 2))

    def test_validate_pick_rejects_non_member(self):
        with pytest.raises(SchedulerError):
            validate_pick(9, (1, 2))

    def test_machine_guards_against_bad_scheduler(self):
        class Evil(Scheduler):
            def pick(self, machine, runnable):
                return -1

        def main(ctx):
            yield ctx.local()

        with pytest.raises(SchedulerError):
            Machine(Program("p", main), Evil()).run()
