"""Unit tests for the shared-memory model."""

import pytest

from repro.errors import SimMemoryError
from repro.sim.memory import SharedMemory, addresses_conflict, region_of


class TestBasicAccess:
    def test_load_initial_value(self):
        mem = SharedMemory({"x": 7})
        assert mem.load("x") == 7

    def test_store_then_load(self):
        mem = SharedMemory()
        mem.store("x", 1)
        assert mem.load("x") == 1

    def test_store_overwrites(self):
        mem = SharedMemory({"x": 1})
        mem.store("x", 2)
        assert mem.load("x") == 2

    def test_load_missing_address_raises(self):
        mem = SharedMemory()
        with pytest.raises(SimMemoryError, match="never allocated"):
            mem.load("ghost")

    def test_tuple_addresses(self):
        mem = SharedMemory()
        mem.store(("buf", 0), "a")
        mem.store(("buf", 1), "b")
        assert mem.load(("buf", 1)) == "b"
        assert len(mem) == 2

    def test_contains(self):
        mem = SharedMemory({"x": 1})
        assert "x" in mem
        assert "y" not in mem

    def test_addresses_iterates_in_insertion_order(self):
        mem = SharedMemory()
        mem.store("b", 1)
        mem.store("a", 2)
        assert list(mem.addresses()) == ["b", "a"]


class TestAtomics:
    def test_rmw_returns_old_value(self):
        mem = SharedMemory({"n": 5})
        old = mem.rmw("n", lambda v: v + 1)
        assert old == 5
        assert mem.load("n") == 6

    def test_rmw_on_missing_address_raises(self):
        mem = SharedMemory()
        with pytest.raises(SimMemoryError):
            mem.rmw("n", lambda v: v + 1)

    def test_cas_success(self):
        mem = SharedMemory({"n": 5})
        assert mem.cas("n", 5, 9) is True
        assert mem.load("n") == 9

    def test_cas_failure_leaves_value(self):
        mem = SharedMemory({"n": 5})
        assert mem.cas("n", 4, 9) is False
        assert mem.load("n") == 5


class TestFree:
    def test_free_scalar(self):
        mem = SharedMemory({"x": 1})
        victims = mem.free("x")
        assert victims == ("x",)
        assert "x" not in mem

    def test_free_region_by_name(self):
        mem = SharedMemory({("buf", 0): "a", ("buf", 1): "b", "other": 1})
        victims = mem.free("buf")
        assert set(victims) == {("buf", 0), ("buf", 1)}
        assert "other" in mem

    def test_free_exact_tuple_only_frees_that_cell(self):
        mem = SharedMemory({("buf", 0): "a", ("buf", 1): "b"})
        mem.free(("buf", 0))
        assert ("buf", 1) in mem
        assert ("buf", 0) not in mem

    def test_use_after_free_diagnosed(self):
        mem = SharedMemory({"x": 1})
        mem.free("x")
        with pytest.raises(SimMemoryError, match="use after free"):
            mem.load("x")

    def test_use_after_region_free_diagnosed(self):
        mem = SharedMemory({("buf", 0): "a"})
        mem.free("buf")
        with pytest.raises(SimMemoryError, match="use after free"):
            mem.load(("buf", 0))

    def test_store_to_freed_address_crashes(self):
        mem = SharedMemory({"x": 1})
        mem.free("x")
        with pytest.raises(SimMemoryError, match="use after free"):
            mem.store("x", 2)

    def test_store_to_freed_region_cell_crashes(self):
        mem = SharedMemory({("buf", 0): "a"})
        mem.free("buf")
        with pytest.raises(SimMemoryError, match="use after free"):
            mem.store(("buf", 7), "new")

    def test_double_free_diagnosed(self):
        mem = SharedMemory({"x": 1})
        mem.free("x")
        with pytest.raises(SimMemoryError, match="double free"):
            mem.free("x")

    def test_free_unallocated_diagnosed(self):
        mem = SharedMemory()
        with pytest.raises(SimMemoryError, match="unallocated"):
            mem.free("never")

    def test_was_freed(self):
        mem = SharedMemory({("q", 1): "x"})
        assert not mem.was_freed(("q", 1))
        mem.free("q")
        assert mem.was_freed(("q", 1))
        assert mem.was_freed(("q", 99))  # whole region poisoned


class TestSnapshot:
    def test_snapshot_is_a_copy(self):
        mem = SharedMemory({"x": 1})
        snap = mem.snapshot()
        mem.store("x", 2)
        assert snap == {"x": 1}


class TestAddressHelpers:
    def test_region_of_tuple(self):
        assert region_of(("buf", 3)) == "buf"

    def test_region_of_scalar_is_itself(self):
        assert region_of("x") == "x"

    @pytest.mark.parametrize(
        "a, b, conflict",
        [
            ("x", "x", True),
            ("x", "y", False),
            (("buf", 0), ("buf", 0), True),
            (("buf", 0), ("buf", 1), False),
            (("buf", 0), "buf", True),  # cell vs region free
            ("buf", ("buf", 5), True),
            (("a", 0), "b", False),
        ],
    )
    def test_addresses_conflict(self, a, b, conflict):
        assert addresses_conflict(a, b) is conflict
