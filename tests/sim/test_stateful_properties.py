"""Stateful property tests (hypothesis RuleBasedStateMachine).

Model-based testing of the two stateful substrates everything rests on:
shared memory (against a plain dict model) and the synchronization table
(against simple invariants like "a mutex has at most one owner").
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import SimMemoryError, SimSyncError
from repro.sim.memory import SharedMemory, region_of
from repro.sim.sync import SyncTable

ADDRS = st.one_of(
    st.sampled_from(["a", "b", "c"]),
    st.tuples(st.sampled_from(["buf", "q"]), st.integers(0, 3)),
)
VALUES = st.integers(-5, 5)


class MemoryModel(RuleBasedStateMachine):
    """SharedMemory must behave like a dict + poisoned-free set."""

    def __init__(self):
        super().__init__()
        self.memory = SharedMemory()
        self.model = {}
        self.freed = set()

    def _poisoned(self, addr):
        return addr in self.freed or region_of(addr) in self.freed

    @rule(addr=ADDRS, value=VALUES)
    def store(self, addr, value):
        if self._poisoned(addr):
            try:
                self.memory.store(addr, value)
            except SimMemoryError:
                return
            raise AssertionError("store to freed address succeeded")
        self.memory.store(addr, value)
        self.model[addr] = value

    @rule(addr=ADDRS)
    def load(self, addr):
        if addr in self.model:
            assert self.memory.load(addr) == self.model[addr]
        else:
            try:
                self.memory.load(addr)
            except SimMemoryError:
                return
            raise AssertionError("load of absent address succeeded")

    @rule(addr=ADDRS)
    def free(self, addr):
        victims = [
            a for a in self.model if a == addr or region_of(a) == addr
        ]
        if victims:
            self.memory.free(addr)
            for victim in victims:
                del self.model[victim]
                self.freed.add(victim)
            self.freed.add(addr)
        else:
            try:
                self.memory.free(addr)
            except SimMemoryError:
                return
            raise AssertionError("free of absent address succeeded")

    @rule(addr=ADDRS, delta=VALUES)
    def rmw(self, addr, delta):
        if addr in self.model:
            old = self.memory.rmw(addr, lambda v: v + delta)
            assert old == self.model[addr]
            self.model[addr] += delta
        else:
            try:
                self.memory.rmw(addr, lambda v: v + delta)
            except SimMemoryError:
                return
            raise AssertionError("rmw of absent address succeeded")

    @invariant()
    def snapshot_matches_model(self):
        assert self.memory.snapshot() == self.model


class SyncModel(RuleBasedStateMachine):
    """SyncTable invariants: single mutex owner, rwlock exclusivity."""

    MUTEXES = ["m1", "m2"]
    RWLOCKS = ["rw1"]
    TIDS = [1, 2, 3]

    def __init__(self):
        super().__init__()
        self.table = SyncTable(semaphores={"s": 1})
        self.mutex_owner = {}
        self.rw_writer = {}
        self.rw_readers = {name: set() for name in self.RWLOCKS}
        self.sem = 1

    @rule(name=st.sampled_from(MUTEXES), tid=st.sampled_from(TIDS))
    def mutex_acquire(self, name, tid):
        if self.mutex_owner.get(name) is None:
            self.table.mutex(name).acquire(tid)
            self.mutex_owner[name] = tid
        else:
            try:
                self.table.mutex(name).acquire(tid)
            except SimSyncError:
                return
            raise AssertionError("double acquire succeeded")

    @rule(name=st.sampled_from(MUTEXES), tid=st.sampled_from(TIDS))
    def mutex_release(self, name, tid):
        if self.mutex_owner.get(name) == tid:
            self.table.mutex(name).release(tid)
            self.mutex_owner[name] = None
        else:
            try:
                self.table.mutex(name).release(tid)
            except SimSyncError:
                return
            raise AssertionError("foreign release succeeded")

    @rule(name=st.sampled_from(RWLOCKS), tid=st.sampled_from(TIDS))
    def rw_read(self, name, tid):
        ok = self.rw_writer.get(name) is None and tid not in self.rw_readers[name]
        if ok:
            self.table.rwlock(name).acquire_read(tid)
            self.rw_readers[name].add(tid)
        else:
            try:
                self.table.rwlock(name).acquire_read(tid)
            except SimSyncError:
                return
            raise AssertionError("read acquire should have failed")

    @rule(name=st.sampled_from(RWLOCKS), tid=st.sampled_from(TIDS))
    def rw_write(self, name, tid):
        ok = self.rw_writer.get(name) is None and not self.rw_readers[name]
        if ok:
            self.table.rwlock(name).acquire_write(tid)
            self.rw_writer[name] = tid
        else:
            try:
                self.table.rwlock(name).acquire_write(tid)
            except SimSyncError:
                return
            raise AssertionError("write acquire should have failed")

    @rule(name=st.sampled_from(RWLOCKS), tid=st.sampled_from(TIDS))
    def rw_release(self, name, tid):
        holds = self.rw_writer.get(name) == tid or tid in self.rw_readers[name]
        if holds:
            self.table.rwlock(name).release(tid)
            if self.rw_writer.get(name) == tid:
                self.rw_writer[name] = None
            else:
                self.rw_readers[name].discard(tid)
        else:
            try:
                self.table.rwlock(name).release(tid)
            except SimSyncError:
                return
            raise AssertionError("foreign rwlock release succeeded")

    @rule(tid=st.sampled_from(TIDS))
    def sem_acquire(self, tid):
        if self.sem > 0:
            self.table.semaphore("s").acquire(tid)
            self.sem -= 1
        else:
            try:
                self.table.semaphore("s").acquire(tid)
            except SimSyncError:
                return
            raise AssertionError("semaphore went negative")

    @rule()
    def sem_release(self):
        self.table.semaphore("s").release()
        self.sem += 1

    @invariant()
    def mutex_owners_match(self):
        for name in self.MUTEXES:
            assert self.table.mutex(name).owner == self.mutex_owner.get(name)

    @invariant()
    def rwlock_exclusivity(self):
        for name in self.RWLOCKS:
            lock = self.table.rwlock(name)
            assert lock.writer == self.rw_writer.get(name)
            assert set(lock.readers) == self.rw_readers[name]
            assert not (lock.writer is not None and lock.readers)

    @invariant()
    def semaphore_count_matches(self):
        assert self.table.semaphore("s").count == self.sem


TestMemoryModel = MemoryModel.TestCase
TestSyncModel = SyncModel.TestCase
TestMemoryModel.settings = settings(max_examples=60, stateful_step_count=40,
                                    deadline=None)
TestSyncModel.settings = settings(max_examples=60, stateful_step_count=40,
                                  deadline=None)
