"""Unit tests for the virtual-time model."""

import pytest

from repro.errors import SimUsageError
from repro.sim.vtime import VirtualClock


class TestBasics:
    def test_requires_at_least_one_cpu(self):
        with pytest.raises(SimUsageError):
            VirtualClock(0)

    def test_cpu_affinity_is_modulo(self):
        clock = VirtualClock(4)
        assert clock.cpu_of(0) == 0
        assert clock.cpu_of(5) == 1
        assert clock.cpu_of(7) == 3

    def test_charge_op_hits_both_clocks(self):
        clock = VirtualClock(2)
        clock.charge_op(0, 5)
        s = clock.summary()
        assert s.per_cpu_native[0] == 5
        assert s.per_cpu_recorded[0] == 5

    def test_instrumentation_hits_recorded_only(self):
        clock = VirtualClock(2)
        clock.charge_op(0, 5)
        clock.charge_instrumentation(0, 3)
        s = clock.summary()
        assert s.per_cpu_native[0] == 5
        assert s.per_cpu_recorded[0] == 8

    def test_runtime_is_max_over_cpus(self):
        clock = VirtualClock(2)
        clock.charge_op(0, 10)
        clock.charge_op(1, 4)
        s = clock.summary()
        assert s.native_time == 10

    def test_advance_models_sleep(self):
        clock = VirtualClock(1)
        clock.advance(0, 100)
        s = clock.summary()
        assert s.native_time == 100
        assert s.recorded_time == 100


class TestLogSerialization:
    def test_appends_on_one_cpu_accumulate(self):
        clock = VirtualClock(2)
        clock.charge_log_append(0, 10)
        clock.charge_log_append(0, 10)
        assert clock.summary().per_cpu_recorded[0] == 20

    def test_appends_serialize_across_cpus(self):
        # Two CPUs each doing one append cannot overlap: the second append
        # starts after the first finishes, wherever it ran.
        clock = VirtualClock(2)
        clock.charge_log_append(0, 10)
        clock.charge_log_append(1, 10)
        s = clock.summary()
        assert s.per_cpu_recorded[0] == 10
        assert s.per_cpu_recorded[1] == 20  # waited for CPU 0's append
        assert s.recorded_time == 20

    def test_append_waits_for_local_clock_too(self):
        clock = VirtualClock(2)
        clock.charge_op(1, 50)
        clock.charge_log_append(0, 10)  # log clock now 10
        clock.charge_log_append(1, 10)  # starts at max(50, 10) = 50
        assert clock.summary().per_cpu_recorded[1] == 60

    def test_parallel_work_overlaps_but_logging_does_not(self):
        # 4 CPUs x 100 units of work: native 100.  Add one serialized
        # append per 10 units on each CPU: recorded grows superlinearly.
        clock = VirtualClock(4)
        for cpu in range(4):
            clock.charge_op(cpu, 100)
        for _ in range(10):
            for cpu in range(4):
                clock.charge_log_append(cpu, 5)
        s = clock.summary()
        assert s.native_time == 100
        assert s.recorded_time >= 100 + 40 * 5


class TestSummary:
    def test_overhead_zero_without_instrumentation(self):
        clock = VirtualClock(2)
        clock.charge_op(0, 10)
        assert clock.summary().overhead == pytest.approx(0.0)

    def test_overhead_percent(self):
        clock = VirtualClock(1)
        clock.charge_op(0, 100)
        clock.charge_instrumentation(0, 50)
        s = clock.summary()
        assert s.overhead == pytest.approx(0.5)
        assert s.overhead_percent == pytest.approx(50.0)

    def test_overhead_on_empty_run_is_zero(self):
        assert VirtualClock(1).summary().overhead == 0.0

    def test_now_tracks_recorded_max(self):
        clock = VirtualClock(2)
        clock.charge_op(1, 7)
        assert clock.now() == 7
