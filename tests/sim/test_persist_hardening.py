"""Hardening regressions for the trace (de)serializer.

Two past failure classes: payload values that collide with the ``__t``
tuple / ``__d`` dict tags must survive a round trip unchanged, and parse
errors must name the 1-based line (and event number) of the bad record.
"""

import io
import json

import pytest

from repro.errors import SketchFormatError
from repro.sim.persist import (
    _pack,
    _unpack,
    dump_trace,
    load_trace,
    read_trace,
    save_trace,
)
from tests.conftest import counter_program, run_program

ADVERSARIAL = [
    {"__t": 1},
    {"__t": [1, 2]},
    {"__d": []},
    {"__d": [["k", "v"]]},
    {"__t": [1], "x": 2},
    {"__t": {"__d": 3}},
    [(1, 2), {"__t": [3]}],
    ((1, {"__d": 5}),),
    {("a", 1): {"__t": [0]}},
]


@pytest.mark.parametrize("value", ADVERSARIAL, ids=repr)
def test_adversarial_tag_payloads_round_trip(value):
    wire = json.loads(json.dumps(_pack(value)))
    assert _unpack(wire) == value


def test_tuples_and_dict_keys_still_round_trip():
    value = {("region", 3): (1, (2, 3)), "plain": [1, {"nested": (4,)}]}
    assert _unpack(json.loads(json.dumps(_pack(value)))) == value


def _dumped_trace_text() -> str:
    trace = run_program(counter_program(), seed=1)
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def test_trace_with_adversarial_stdout_round_trips():
    trace = run_program(counter_program(), seed=1)
    trace.stdout.append({"__t": [1, 2]})
    trace.stdout.append({"__d": "payload"})
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    loaded = load_trace(io.StringIO(buffer.getvalue()))
    assert loaded.stdout == trace.stdout


def test_header_error_names_line_1():
    with pytest.raises(SketchFormatError, match=r"line 1"):
        load_trace(io.StringIO("not json\n"))


def test_event_error_names_line_and_event_number():
    lines = _dumped_trace_text().splitlines()
    lines[2] = "{broken"  # third line = event 2
    with pytest.raises(SketchFormatError, match=r"line 3, event 2"):
        load_trace(io.StringIO("\n".join(lines) + "\n"))


def test_structural_event_error_is_also_numbered():
    lines = _dumped_trace_text().splitlines()
    lines[4] = json.dumps(["not", "an", "event"])
    with pytest.raises(SketchFormatError, match=r"line 5, event 4"):
        load_trace(io.StringIO("\n".join(lines) + "\n"))


class TestAtomicSaveTrace:
    """save_trace is all-or-nothing: a failed write can lose the new
    content, never the file that was already there."""

    def test_save_then_read_round_trips(self, tmp_path):
        trace = run_program(counter_program(), seed=1)
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        loaded = read_trace(str(path))
        assert loaded.schedule == trace.schedule
        assert loaded.final_memory == trace.final_memory

    def test_failed_write_leaves_the_previous_trace_intact(self, tmp_path):
        good = run_program(counter_program(), seed=1)
        path = tmp_path / "trace.json"
        save_trace(good, str(path))
        before = path.read_text()

        broken = run_program(counter_program(), seed=1)
        broken.stdout.append(object())  # defeats JSON serialization
        with pytest.raises(TypeError):
            save_trace(broken, str(path))

        assert path.read_text() == before
        # ... and the aborted temp file was cleaned up, not left behind.
        assert [p.name for p in sorted(tmp_path.iterdir())] == ["trace.json"]

    def test_failed_first_write_creates_nothing(self, tmp_path):
        broken = run_program(counter_program(), seed=1)
        broken.stdout.append(object())
        with pytest.raises(TypeError):
            save_trace(broken, str(tmp_path / "trace.json"))
        assert sorted(tmp_path.iterdir()) == []
