"""Tests for reader-writer lock semantics across the stack."""

import pytest

from repro.analysis import find_races, lockset_report
from repro.errors import SimSyncError
from repro.sim import Machine, MachineConfig, Program, RandomScheduler
from repro.sim.failures import FailureKind
from repro.sim.sync import RWLock

from tests.conftest import run_program


def run(main, seed=0, **kwargs):
    return Machine(
        Program("rw", main, **kwargs), RandomScheduler(seed), MachineConfig(ncpus=4)
    ).run()


class TestRWLockObject:
    def test_many_readers(self):
        lock = RWLock("l")
        lock.acquire_read(1)
        lock.acquire_read(2)
        assert lock.holders() == [1, 2]
        assert lock.can_read and not lock.can_write

    def test_writer_excludes_everyone(self):
        lock = RWLock("l")
        lock.acquire_write(1)
        assert not lock.can_read and not lock.can_write
        assert lock.holders() == [1]

    def test_write_acquire_while_read_held_is_an_error(self):
        lock = RWLock("l")
        lock.acquire_read(1)
        with pytest.raises(SimSyncError):
            lock.acquire_write(2)

    def test_read_acquire_while_write_held_is_an_error(self):
        lock = RWLock("l")
        lock.acquire_write(1)
        with pytest.raises(SimSyncError):
            lock.acquire_read(2)

    def test_release_unheld_is_an_error(self):
        with pytest.raises(SimSyncError):
            RWLock("l").release(3)

    def test_release_restores_availability(self):
        lock = RWLock("l")
        lock.acquire_write(1)
        lock.release(1)
        assert lock.can_write

    def test_reentrant_read_rejected(self):
        lock = RWLock("l")
        lock.acquire_read(1)
        with pytest.raises(SimSyncError):
            lock.acquire_read(1)


class TestMachineSemantics:
    def test_concurrent_readers_overlap(self):
        def reader(ctx):
            yield ctx.rdlock("rw")
            inside = yield ctx.rmw("inside", lambda v: v + 1)
            peak = yield ctx.read("peak")
            yield ctx.write("peak", max(peak, inside + 1))
            yield ctx.local(3)
            yield ctx.rmw("inside", lambda v: v - 1)
            yield ctx.rwunlock("rw")

        def main(ctx):
            tids = []
            for _ in range(3):
                tid = yield ctx.spawn(reader)
                tids.append(tid)
            for tid in tids:
                yield ctx.join(tid)

        # across seeds, at least one schedule overlaps two readers
        peaks = set()
        for seed in range(20):
            trace = run(main, seed, initial_memory={"inside": 0, "peak": 0})
            assert not trace.failed
            peaks.add(trace.final_memory["peak"])
        assert max(peaks) >= 2

    def test_writer_is_exclusive(self):
        def writer(ctx, value):
            yield ctx.wrlock("rw")
            inside = yield ctx.rmw("inside", lambda v: v + 1)
            yield ctx.check(inside == 0, "two writers inside the rwlock")
            yield ctx.write("x", value)
            yield ctx.rmw("inside", lambda v: v - 1)
            yield ctx.rwunlock("rw")

        def reader(ctx):
            yield ctx.rdlock("rw")
            inside = yield ctx.read("inside")
            yield ctx.check(inside == 0, "reader overlapped a writer")
            yield ctx.read("x")
            yield ctx.rwunlock("rw")

        def main(ctx):
            tids = []
            for i in range(2):
                tid = yield ctx.spawn(writer, i)
                tids.append(tid)
            for _ in range(2):
                tid = yield ctx.spawn(reader)
                tids.append(tid)
            for tid in tids:
                yield ctx.join(tid)

        for seed in range(25):
            trace = run(main, seed, initial_memory={"inside": 0, "x": 0})
            assert not trace.failed, (seed, trace.failure.describe())

    def test_writer_blocks_until_readers_drain(self):
        def reader(ctx):
            yield ctx.rdlock("rw")
            yield ctx.write("reader_in", True)
            yield ctx.local(4)
            yield ctx.rwunlock("rw")

        def writer(ctx):
            while True:
                ready = yield ctx.read("reader_in")
                if ready:
                    break
                yield ctx.cpu_yield()
            yield ctx.wrlock("rw")  # must wait for the reader
            yield ctx.write("writer_done", True)
            yield ctx.rwunlock("rw")

        def main(ctx):
            r = yield ctx.spawn(reader)
            w = yield ctx.spawn(writer)
            yield ctx.join(r)
            yield ctx.join(w)

        trace = run(main, 1, initial_memory={"reader_in": False,
                                             "writer_done": False})
        assert not trace.failed
        assert trace.final_memory["writer_done"]

    def test_rwlock_deadlock_detected(self):
        def left(ctx):
            yield ctx.wrlock("A")
            yield ctx.local(1)
            yield ctx.wrlock("B")
            yield ctx.rwunlock("B")
            yield ctx.rwunlock("A")

        def right(ctx):
            yield ctx.wrlock("B")
            yield ctx.local(1)
            yield ctx.wrlock("A")
            yield ctx.rwunlock("A")
            yield ctx.rwunlock("B")

        def main(ctx):
            a = yield ctx.spawn(left)
            b = yield ctx.spawn(right)
            yield ctx.join(a)
            yield ctx.join(b)

        hit = False
        for seed in range(60):
            trace = run(main, seed)
            if trace.failed:
                assert trace.failure.kind is FailureKind.DEADLOCK
                hit = True
        assert hit, "rwlock inversion never deadlocked in 60 seeds"


class TestAnalysisIntegration:
    @staticmethod
    def _guarded_program():
        def writer(ctx):
            yield ctx.wrlock("rw")
            value = yield ctx.read("shared")
            yield ctx.write("shared", value + 1)
            yield ctx.rwunlock("rw")

        def reader(ctx):
            yield ctx.rdlock("rw")
            yield ctx.read("shared")
            yield ctx.rwunlock("rw")

        def main(ctx):
            w = yield ctx.spawn(writer)
            r = yield ctx.spawn(reader)
            yield ctx.join(w)
            yield ctx.join(r)

        return Program("rwguard", main, initial_memory={"shared": 0})

    def test_rwlock_protected_accesses_do_not_race(self):
        program = self._guarded_program()
        for seed in range(10):
            trace = Machine(program, RandomScheduler(seed)).run()
            assert find_races(trace) == []

    def test_lockset_sees_rwlock_protection(self):
        trace = Machine(self._guarded_program(), RandomScheduler(2)).run()
        report = lockset_report(trace)
        prot = report.by_address["shared"]
        assert "rw:r" in prot.candidate_set
        assert not prot.inconsistent


class TestReplayIntegration:
    def test_rwlock_bug_reproduces_under_sync_sketch(self):
        # a stale-read bug guarded only on the writer side
        def writer(ctx):
            yield ctx.local(2)
            yield ctx.wrlock("rw")
            yield ctx.write("config", 7)
            yield ctx.rwunlock("rw")

        def reader(ctx):
            yield ctx.local(1)
            value = yield ctx.read("config")  # BUG: no rdlock
            yield ctx.check(value == 7, "read config before writer published")

        def main(ctx):
            w = yield ctx.spawn(writer)
            r = yield ctx.spawn(reader)
            yield ctx.join(w)
            yield ctx.join(r)

        from repro import ExplorerConfig, SketchKind, record, reproduce

        program = Program("rwbug", main, initial_memory={"config": 0})
        failing = None
        for seed in range(80):
            recorded = record(program, SketchKind.SYNC, seed=seed)
            if recorded.failed:
                failing = recorded
                break
        assert failing is not None
        report = reproduce(failing, ExplorerConfig(max_attempts=100))
        assert report.success
