"""Unit tests for the operation vocabulary and ThreadContext constructors."""

import pytest

from repro.sim.ops import (
    BLOCKING_KINDS,
    MEMORY_KINDS,
    SYNC_KINDS,
    WRITE_KINDS,
    Op,
    OpKind,
)
from repro.sim.program import ThreadContext


@pytest.fixture
def ctx():
    return ThreadContext(tid=1)


class TestKindSets:
    def test_writes_are_memory_accesses(self):
        assert WRITE_KINDS <= MEMORY_KINDS

    def test_read_is_memory_but_not_write(self):
        assert OpKind.READ in MEMORY_KINDS
        assert OpKind.READ not in WRITE_KINDS

    def test_free_counts_as_write(self):
        assert OpKind.FREE in WRITE_KINDS

    def test_thread_lifecycle_is_sync(self):
        assert OpKind.SPAWN in SYNC_KINDS
        assert OpKind.JOIN in SYNC_KINDS

    def test_markers_are_not_sync(self):
        assert OpKind.BASIC_BLOCK not in SYNC_KINDS
        assert OpKind.FUNC_ENTER not in SYNC_KINDS

    def test_blocking_kinds_include_lock_and_join(self):
        assert OpKind.LOCK in BLOCKING_KINDS
        assert OpKind.JOIN in BLOCKING_KINDS
        assert OpKind.UNLOCK not in BLOCKING_KINDS


class TestOpPredicates:
    def test_read_predicates(self, ctx):
        op = ctx.read("x")
        assert op.is_memory_access()
        assert not op.is_write()
        assert not op.is_sync()

    def test_write_predicates(self, ctx):
        op = ctx.write("x", 1)
        assert op.is_memory_access() and op.is_write()

    def test_lock_predicates(self, ctx):
        op = ctx.lock("m")
        assert op.is_sync() and not op.is_memory_access()


class TestContextConstructors:
    def test_read(self, ctx):
        op = ctx.read("x")
        assert op.kind is OpKind.READ and op.addr == "x"

    def test_write_carries_value(self, ctx):
        op = ctx.write(("a", 1), 42)
        assert op.kind is OpKind.WRITE and op.value == 42

    def test_cas_packs_expected_and_new(self, ctx):
        op = ctx.cas("x", 1, 2)
        assert op.value == (1, 2)

    def test_wait_packs_cond_and_lock(self, ctx):
        op = ctx.wait("cv", "m")
        assert op.kind is OpKind.COND_WAIT and op.obj == ("cv", "m")

    def test_spawn_records_body_name(self, ctx):
        def body(c):
            yield c.local()

        op = ctx.spawn(body, 1, 2)
        assert op.kind is OpKind.SPAWN
        assert op.func is body
        assert op.args == (1, 2)
        assert op.name == "body"

    def test_syscall(self, ctx):
        op = ctx.syscall("send", "ch", "msg")
        assert op.kind is OpKind.SYSCALL
        assert op.name == "send" and op.args == ("ch", "msg")

    def test_output_is_stdout_syscall(self, ctx):
        op = ctx.output("v")
        assert op.kind is OpKind.SYSCALL and op.name == "write_stdout"

    def test_rand_and_now_and_sleep_are_syscalls(self, ctx):
        assert ctx.rand(5).name == "rand"
        assert ctx.now().name == "now"
        assert ctx.sleep(3).name == "sleep"

    def test_check_coerces_to_bool(self, ctx):
        op = ctx.check([], "empty is falsy")
        assert op.kind is OpKind.ASSERT and op.value is False
        assert ctx.check([1], "truthy").value is True

    def test_bb_has_zero_cost(self, ctx):
        assert ctx.bb("loop").cost == 0

    def test_work_emits_n_quanta(self, ctx):
        ops = list(ctx.work(3, cost=2))
        assert len(ops) == 3
        assert all(op.kind is OpKind.LOCAL and op.cost == 2 for op in ops)

    def test_work_zero_is_empty(self, ctx):
        assert list(ctx.work(0)) == []

    def test_free_region_yields_cells_then_region(self, ctx):
        ops = list(ctx.free_region("buf", [0, 1]))
        assert [op.addr for op in ops] == [("buf", 0), ("buf", 1), "buf"]
        assert all(op.kind is OpKind.FREE for op in ops)


class TestDescribe:
    @pytest.mark.parametrize(
        "op_factory, fragment",
        [
            (lambda c: c.read("x"), "read('x')"),
            (lambda c: c.lock("m"), "lock('m')"),
            (lambda c: c.syscall("send", "ch"), "syscall send"),
            (lambda c: c.bb("L1"), "bb(L1)"),
            (lambda c: c.check(True, "inv"), "assert(inv)"),
        ],
    )
    def test_describe_is_informative(self, ctx, op_factory, fragment):
        assert fragment in op_factory(ctx).describe()

    def test_op_is_frozen(self, ctx):
        op = ctx.read("x")
        with pytest.raises(Exception):
            op.addr = "y"
