"""Edge-case coverage for machine semantics not exercised elsewhere."""

import pytest

from repro.sim import Machine, MachineConfig, Program, RandomScheduler
from repro.sim.failures import FailureKind
from repro.sim.ops import OpKind


def run(main, seed=0, **kwargs):
    cfg = kwargs.pop("config", MachineConfig(ncpus=4))
    return Machine(Program("edge", main, **kwargs), RandomScheduler(seed), cfg).run()


class TestCallNesting:
    def test_nested_calls_bracket_correctly(self):
        def inner(ctx, x):
            yield ctx.local(1)
            return x * 2

        def outer(ctx, x):
            value = yield from ctx.call(inner, x, name="inner")
            return value + 1

        def main(ctx):
            value = yield from ctx.call(outer, 10, name="outer")
            yield ctx.check(value == 21, "nested call value")

        trace = run(main)
        assert not trace.failed
        names = [
            (e.kind.value, e.name)
            for e in trace.events
            if e.kind in (OpKind.FUNC_ENTER, OpKind.FUNC_EXIT)
        ]
        assert names == [
            ("func_enter", "outer"),
            ("func_enter", "inner"),
            ("func_exit", "inner"),
            ("func_exit", "outer"),
        ]

    def test_call_default_name_is_function_name(self):
        def helper(ctx):
            yield ctx.local(1)

        def main(ctx):
            yield from ctx.call(helper)

        trace = run(main)
        enters = [e for e in trace.events if e.kind is OpKind.FUNC_ENTER]
        assert enters[0].name == "helper"


class TestFreeRegionHelper:
    def test_free_region_removes_cells_and_name(self):
        def main(ctx):
            yield from ctx.free_region("buf", [0, 1])

        memory = {("buf", 0): "a", ("buf", 1): "b", "buf": "hdr"}
        trace = run(main, initial_memory=memory)
        assert not trace.failed
        assert trace.final_memory == {}

    def test_free_region_missing_cell_crashes(self):
        def main(ctx):
            yield from ctx.free_region("buf", [0, 1])

        trace = run(main, initial_memory={("buf", 0): "a", "buf": "hdr"})
        assert trace.failed
        assert trace.failure.kind is FailureKind.CRASH


class TestSleepAndTime:
    def test_sleep_advances_virtual_time(self):
        def main(ctx):
            yield ctx.sleep(500)

        trace = run(main)
        assert trace.clock.native_time >= 500

    def test_now_is_monotone_per_thread(self):
        def main(ctx):
            a = yield ctx.now()
            yield ctx.local(1)
            b = yield ctx.now()
            yield ctx.check(b >= a, "time went backwards")

        assert not run(main).failed


class TestSpawnEdgeCases:
    def test_child_crash_at_first_op_stops_run(self):
        def child(ctx):
            raise RuntimeError("immediate crash")
            yield ctx.local(1)  # pragma: no cover

        def main(ctx):
            tid = yield ctx.spawn(child)
            yield ctx.join(tid)

        trace = run(main)
        assert trace.failed
        assert trace.failure.kind is FailureKind.CRASH
        assert "immediate crash" in trace.failure.where

    def test_thread_returning_without_yield(self):
        def child(ctx):
            return 5
            yield  # pragma: no cover - makes it a generator

        def main(ctx):
            tid = yield ctx.spawn(child)
            value = yield ctx.join(tid)
            yield ctx.check(value == 5, "empty thread return")

        assert not run(main).failed

    def test_join_out_of_order(self):
        def child(ctx, n):
            yield ctx.local(n)
            return n

        def main(ctx):
            a = yield ctx.spawn(child, 1)
            b = yield ctx.spawn(child, 2)
            vb = yield ctx.join(b)
            va = yield ctx.join(a)
            yield ctx.check((va, vb) == (1, 2), "join order independence")

        for seed in range(5):
            assert not run(main, seed).failed

    def test_double_join_is_fine(self):
        def child(ctx):
            yield ctx.local(1)
            return "x"

        def main(ctx):
            tid = yield ctx.spawn(child)
            first = yield ctx.join(tid)
            second = yield ctx.join(tid)
            yield ctx.check(first == second == "x", "double join")

        assert not run(main).failed


class TestSemaphoreHang:
    def test_starved_semaphore_is_a_hang(self):
        def main(ctx):
            yield ctx.sem_acquire("never")

        trace = run(main, semaphores={"never": 0})
        assert trace.failed
        assert trace.failure.kind is FailureKind.HANG

    def test_blocked_recv_is_a_hang(self):
        def main(ctx):
            yield ctx.syscall("recv", "silent_channel")

        trace = run(main)
        assert trace.failed
        assert trace.failure.kind is FailureKind.HANG


class TestKernelInteraction:
    def test_syscall_event_carries_args(self):
        def main(ctx):
            yield ctx.syscall("send", "ch", "hello")

        trace = run(main)
        send = next(e for e in trace.events if e.kind is OpKind.SYSCALL)
        assert send.args == ("ch", "hello")

    def test_kernel_seed_changes_rand_stream(self):
        def main(ctx):
            value = yield ctx.rand(10_000)
            yield ctx.output(value)

        a = run(main, config=MachineConfig(kernel_seed=1))
        b = run(main, config=MachineConfig(kernel_seed=2))
        assert a.stdout != b.stdout

    def test_same_kernel_seed_same_stream(self):
        def main(ctx):
            value = yield ctx.rand(10_000)
            yield ctx.output(value)

        a = run(main, config=MachineConfig(kernel_seed=1))
        b = run(main, config=MachineConfig(kernel_seed=1))
        assert a.stdout == b.stdout


class TestCondVarEdges:
    def test_wait_without_holding_lock_crashes(self):
        def main(ctx):
            yield ctx.wait("cv", "m")  # never locked m

        trace = run(main)
        assert trace.failed
        assert trace.failure.kind is FailureKind.CRASH

    def test_signal_with_no_waiters_is_noop(self):
        def main(ctx):
            woken = yield ctx.signal("cv")
            yield ctx.check(woken is None, "no waiter to wake")

        assert not run(main).failed

    def test_broadcast_with_no_waiters(self):
        def main(ctx):
            woken = yield ctx.broadcast("cv")
            yield ctx.check(woken == (), "empty broadcast")

        assert not run(main).failed
