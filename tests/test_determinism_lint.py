"""The replay stack must stay deterministic: the lint tree is clean.

Backed by ``tools/lint_determinism.py`` (the same code CI runs), so a
wall-clock read, unseeded global RNG call, hash-ordered set iteration,
or ``key=id`` sort that sneaks into the package fails the suite before
it flakes a replay.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import lint_determinism  # noqa: E402  (path set up above)


def _rules(source):
    return [v.rule for v in lint_determinism.lint_source(source)]


def test_package_and_tools_are_hazard_free():
    violations = lint_determinism.lint_paths(
        lint_determinism.default_targets(ROOT)
    )
    assert not violations, "\n".join(v.render() for v in violations)


def test_benchmarks_and_tests_are_hazard_free():
    violations = lint_determinism.lint_paths(
        [ROOT / "benchmarks", ROOT / "tests"]
    )
    assert not violations, "\n".join(v.render() for v in violations)


def test_flags_wall_clock_reads():
    assert _rules("import time\nstamp = time.time()\n") == ["wall-clock"]
    assert _rules("from datetime import datetime\nd = datetime.now()\n") == [
        "wall-clock"
    ]


def test_allows_monotonic_duration_timers():
    source = "import time\nt0 = time.perf_counter()\nt1 = time.monotonic()\n"
    assert _rules(source) == []


def test_flags_global_rng_but_allows_seeded_instances():
    assert _rules("import random\nx = random.random()\n") == ["global-random"]
    assert _rules("import random\nrandom.shuffle(items)\n") == [
        "global-random"
    ]
    assert _rules("import random\nrng = random.Random(42)\nx = rng.random()\n") == []


class TestImportBindingResolution:
    """From-imports and aliases must not slip past the module rules."""

    def test_from_import_of_wall_clock(self):
        assert _rules("from time import time\nstamp = time()\n") == [
            "wall-clock"
        ]
        assert _rules(
            "from time import time_ns as ns\nstamp = ns()\n"
        ) == ["wall-clock"]

    def test_module_alias_of_wall_clock(self):
        assert _rules("import time as t\nstamp = t.time()\n") == [
            "wall-clock"
        ]
        assert _rules(
            "from datetime import datetime as dt\nd = dt.now()\n"
        ) == ["wall-clock"]

    def test_from_import_of_global_rng(self):
        assert _rules(
            "from random import shuffle\nshuffle(items)\n"
        ) == ["global-random"]
        assert _rules(
            "import random as rnd\nx = rnd.random()\n"
        ) == ["global-random"]

    def test_seeded_instance_import_stays_exempt(self):
        source = "from random import Random\nrng = Random(42)\nx = rng.random()\n"
        assert _rules(source) == []

    def test_aliased_monotonic_timers_stay_exempt_outside_retry(self):
        assert _rules(
            "from time import perf_counter\nt0 = perf_counter()\n"
        ) == []

    def test_from_import_inside_retry_logic_is_flagged(self):
        source = (
            "from time import monotonic\n"
            "def wait_for_deadline(limit):\n"
            "    while monotonic() < limit:\n"
            "        pass\n"
        )
        assert _rules(source) == ["retry-clock"]

    def test_from_import_of_dir_listing(self):
        assert _rules(
            "from os import listdir\nnames = listdir(root)\n"
        ) == ["unsorted-dir-listing"]
        assert _rules(
            "from os import listdir\nnames = sorted(listdir(root))\n"
        ) == []

    def test_relative_imports_are_ignored(self):
        # A local module that happens to export `time` is not the stdlib.
        assert _rules("from .clock import time\nstamp = time()\n") == []


def test_benchmarks_are_in_the_default_lint_targets():
    targets = lint_determinism.default_targets(ROOT)
    assert ROOT / "benchmarks" in targets


def test_flags_set_iteration_feeding_ordered_output():
    assert _rules("for item in {1, 2, 3}:\n    print(item)\n") == [
        "set-iteration"
    ]
    assert _rules("out = [t for t in set(tids)]\n") == ["set-iteration"]
    assert _rules("for item in sorted({1, 2, 3}):\n    print(item)\n") == []
    assert _rules("for item in sorted(set(tids)):\n    print(item)\n") == []


def test_flags_id_based_ordering():
    assert _rules("order = sorted(objs, key=id)\n") == ["id-ordering"]
    assert _rules("objs.sort(key=lambda o: id(o))\n") == ["id-ordering"]
    assert _rules("order = sorted(objs, key=lambda o: o.uid)\n") == []


def test_pragma_suppresses_a_line():
    source = "import time\nstamp = time.time()  # determinism: ok\n"
    assert _rules(source) == []


def test_violation_rendering_and_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert lint_determinism.main([str(bad)]) == 1
    assert "global-random" in capsys.readouterr().err
    good = tmp_path / "good.py"
    good.write_text("value = 1\n")
    assert lint_determinism.main([str(good)]) == 0
    assert "no determinism hazards" in capsys.readouterr().out


class TestUnsortedDirListing:
    def test_flags_bare_listings(self):
        assert _rules("import os\nnames = os.listdir(root)\n") == [
            "unsorted-dir-listing"
        ]
        assert _rules(
            "import os\nfor entry in os.scandir(root):\n    pass\n"
        ) == ["unsorted-dir-listing"]
        assert _rules("entries = path.iterdir()\n") == ["unsorted-dir-listing"]

    def test_sorted_wrapping_sanctions_the_listing(self):
        assert _rules("import os\nnames = sorted(os.listdir(root))\n") == []
        assert _rules("entries = sorted(path.iterdir(), key=str)\n") == []

    def test_sorting_later_does_not_sanction(self):
        # The listing itself must be wrapped; sorting a variable made
        # from it elsewhere is invisible to a local reader.
        assert _rules("import os\nnames = list(os.listdir(root))\n") == [
            "unsorted-dir-listing"
        ]

    def test_pragma_suppresses(self):
        source = "import os\nnames = os.listdir(root)  # determinism: ok\n"
        assert _rules(source) == []


RETRY_LOOP = (
    "import time\n"
    "def _retry_loop(deadline):\n"
    "    while time.monotonic() < deadline:\n"
    "        pass\n"
)


class TestRetryClock:
    def test_flags_monotonic_reads_inside_retry_logic(self):
        assert _rules(RETRY_LOOP) == ["retry-clock"]
        assert _rules(
            "import time\n"
            "def compute_backoff():\n"
            "    return time.perf_counter()\n"
        ) == ["retry-clock"]

    def test_fragment_matches_enclosing_functions_too(self):
        source = (
            "import time\n"
            "def wait_with_timeout():\n"
            "    def inner():\n"
            "        return time.monotonic_ns()\n"
            "    return inner()\n"
        )
        assert _rules(source) == ["retry-clock"]

    def test_ordinary_functions_and_module_level_are_exempt(self):
        assert _rules(
            "import time\n"
            "def measure_span():\n"
            "    return time.perf_counter()\n"
        ) == []
        assert _rules("import time\nt0 = time.monotonic()\n") == []

    def test_supervise_module_is_the_one_exempt_file(self):
        violations = lint_determinism.lint_source(
            RETRY_LOOP, path="src/repro/robust/supervise.py"
        )
        assert violations == []
        violations = lint_determinism.lint_source(
            RETRY_LOOP, path="src/repro/core/parallel.py"
        )
        assert [v.rule for v in violations] == ["retry-clock"]

    def test_pragma_suppresses(self):
        source = (
            "import time\n"
            "def retry_wait():\n"
            "    t = time.monotonic()  # determinism: ok\n"
        )
        assert _rules(source) == []


SERVICE_CLOCK = (
    "import time\n"
    "def admit(loop):\n"
    "    stamp = time.perf_counter()\n"
    "    tick = loop.time()\n"
)


class TestServiceClock:
    def test_flags_every_clock_read_under_the_service_package(self):
        violations = lint_determinism.lint_source(
            SERVICE_CLOCK, path="src/repro/service/jobs.py"
        )
        assert [v.rule for v in violations] == [
            "service-clock", "service-clock"
        ]

    def test_other_packages_keep_the_looser_rules(self):
        # The identical source outside service/ is clean: perf_counter
        # outside retry logic measures, and loop.time() is unknown.
        violations = lint_determinism.lint_source(
            SERVICE_CLOCK, path="src/repro/core/parallel.py"
        )
        assert violations == []

    def test_wall_clock_in_service_still_reports_as_wall_clock(self):
        violations = lint_determinism.lint_source(
            "import time\nstamp = time.time()\n",
            path="src/repro/service/server.py",
        )
        assert [v.rule for v in violations] == ["wall-clock"]

    def test_pragma_reserved_for_latency_measurement(self):
        source = (
            "import time\n"
            "def finish(job):\n"
            "    job.latency_s = time.perf_counter()  # determinism: ok\n"
        )
        violations = lint_determinism.lint_source(
            source, path="src/repro/service/jobs.py"
        )
        assert violations == []
