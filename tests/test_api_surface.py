"""Repository health: the public API surface is complete and documented.

These tests are the "would a reviewer accept this as a release" gate:
every name a package exports must exist, be importable from the package,
and carry a docstring; modules must document themselves; `__all__` lists
must be accurate.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.analysis",
    "repro.core",
    "repro.apps",
    "repro.bench",
    "repro.robust",
    "repro.obs",
    "repro.sanitize",
    "repro.store",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} has no module docstring"
    )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_dunder_all_is_accurate(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} has no __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"
    assert exported == sorted(exported), f"{package_name}.__all__ not sorted"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{package_name}: no docstring on {undocumented}"


def test_public_classes_have_documented_public_methods():
    sparse = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited
            if not (method.__doc__ and method.__doc__.strip()):
                sparse.append(f"{name}.{method_name}")
    # dataclass-style value objects may have trivially-named accessors;
    # hold the line at zero anyway - everything is currently documented
    # except describe()/render() style one-liners we still document.
    allowed = set()
    missing = [entry for entry in sparse if entry not in allowed]
    assert not missing, f"undocumented public methods: {missing}"


def test_version_is_exposed():
    assert repro.__version__


def test_cli_entry_point_resolves():
    from repro.cli import main

    assert callable(main)
