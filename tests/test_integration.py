"""End-to-end integration tests: the full PRES pipeline on the paper's
application suite (record -> partial-information replay with feedback ->
complete-log deterministic replay)."""

import pytest

from repro import (
    ExplorerConfig,
    SketchKind,
    record,
    replay_complete,
    reproduce,
)
from repro.apps import ALL_BUG_IDS, get_bug

from tests.conftest import run_program

CONFIG = ExplorerConfig(max_attempts=400)


def _failing_seed(spec, budget=400):
    from repro.core.recorder import apply_oracle

    program = spec.make_program()
    for seed in range(budget):
        trace = run_program(program, seed)
        if apply_oracle(trace, spec.oracle) is not None:
            return seed
    pytest.fail(f"{spec.bug_id}: no failing seed in {budget}")


@pytest.mark.parametrize("bug_id", ALL_BUG_IDS)
class TestFullPipeline:
    def test_sync_sketch_reproduces(self, bug_id):
        spec = get_bug(bug_id)
        seed = _failing_seed(spec)
        program = spec.make_program()
        recorded = record(program, SketchKind.SYNC, seed=seed, oracle=spec.oracle)
        assert recorded.failed
        report = reproduce(recorded, CONFIG)
        assert report.success, f"{bug_id} not reproduced under SYNC"
        # reproduce-every-time
        trace = replay_complete(program, report.complete_log, oracle=spec.oracle)
        assert trace.failure is not None
        assert recorded.failure.matches(trace.failure)

    def test_rw_sketch_reproduces_first_attempt(self, bug_id):
        spec = get_bug(bug_id)
        seed = _failing_seed(spec)
        program = spec.make_program()
        recorded = record(program, SketchKind.RW, seed=seed, oracle=spec.oracle)
        report = reproduce(recorded, CONFIG)
        assert report.success
        assert report.attempts == 1, (
            f"{bug_id}: RW (full-order) replay took {report.attempts} attempts"
        )


class TestCrossSketchShape:
    """The paper's aggregate claims, checked as aggregates."""

    def _attempts(self, bug_id, sketch):
        spec = get_bug(bug_id)
        seed = _failing_seed(spec)
        recorded = record(
            spec.make_program(), sketch, seed=seed, oracle=spec.oracle
        )
        report = reproduce(recorded, CONFIG)
        return report.attempts if report.success else None

    def test_most_bugs_under_ten_attempts_with_sync_or_sys(self):
        under_ten = 0
        for bug_id in ALL_BUG_IDS:
            attempts = self._attempts(bug_id, SketchKind.SYNC)
            if attempts is None:
                attempts = self._attempts(bug_id, SketchKind.SYS)
            if attempts is not None and attempts < 10:
                under_ten += 1
        # "still reproducing most tested bugs in fewer than 10 replay
        # attempts" - most = strictly more than half
        assert under_ten > len(ALL_BUG_IDS) // 2, f"only {under_ten}/13 under 10"

    def test_every_bug_reproducible_with_some_sketch(self):
        for bug_id in ALL_BUG_IDS:
            attempts = self._attempts(bug_id, SketchKind.SYNC)
            if attempts is None:
                attempts = self._attempts(bug_id, SketchKind.RW)
            assert attempts is not None, f"{bug_id} irreproducible"


class TestRecordingNonInterference:
    @pytest.mark.parametrize("bug_id", ["mysql-atom-log", "fft-order-sync"])
    def test_heavier_sketch_observes_same_execution(self, bug_id):
        # Recording must be a pure observer: for a fixed seed, every
        # sketch level sees the same production run.
        from repro.core.recorder import record_with_trace

        spec = get_bug(bug_id)
        program = spec.make_program()
        _, light = record_with_trace(program, SketchKind.NONE, seed=11)
        _, heavy = record_with_trace(program, SketchKind.RW, seed=11)
        assert [e.signature() for e in light.events] == [
            e.signature() for e in heavy.events
        ]
