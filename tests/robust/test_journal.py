"""Journal writer/salvage round trips and torn-file recovery.

The crash-consistency contract under test: every appended record is
flushed before the next one, salvage recovers the longest valid prefix,
and the strict reader names the first bad line instead of guessing.
"""

import dataclasses

import pytest

from repro.apps import get_bug
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind, event_visible
from repro.core.recorder import record_with_trace
from repro.errors import RecorderKilled, SketchFormatError
from repro.robust.journal import (
    JournalWriter,
    load_sketch_journal,
    read_journal,
    salvage,
    write_sketch_journal,
)

BUG = "pbzip2-order-free"
SEED = 3  # fails deterministically (use-after-free crash)


def _write(path, payloads, footer=True):
    with JournalWriter(str(path), "test", {"who": "tests"}) as writer:
        for payload in payloads:
            writer.append(payload)
        if footer:
            writer.commit()


class TestRoundTrip:
    def test_intact_journal_round_trips(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [[1, "a"], {"k": 2}, None])
        report = salvage(str(path))
        assert report.intact
        assert not report.salvageable and not report.unrecoverable
        assert report.records == [[1, "a"], {"k": 2}, None]
        assert report.footer["records"] == 3
        assert report.dropped_lines == 0
        assert report.meta == {"who": "tests"}

    def test_strict_reader_accepts_intact(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [1, 2, 3])
        assert read_journal(str(path)).records == [1, 2, 3]

    def test_sketch_journal_round_trips_a_recording(self, tmp_path):
        spec = get_bug(BUG)
        run = record(spec.make_program(), sketch=SketchKind.RW, seed=SEED)
        path = tmp_path / "s.journal"
        write_sketch_journal(run.log, str(path), {"seed": SEED})
        log, report = load_sketch_journal(str(path))
        assert report.intact
        assert log.sketch is SketchKind.RW
        assert log.entries == run.log.entries

    def test_append_after_close_raises(self, tmp_path):
        writer = JournalWriter(str(tmp_path / "j.journal"), "test")
        writer.close()
        with pytest.raises(SketchFormatError):
            writer.append(1)


class TestTornFiles:
    def test_torn_footer_keeps_every_record(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, list(range(10)))
        path.write_bytes(path.read_bytes()[:-5])  # tear the footer line
        report = salvage(str(path))
        assert report.salvageable and not report.intact
        assert report.records == list(range(10))
        assert report.footer is None
        assert report.dropped_lines == 1

    def test_mid_file_truncation_yields_a_prefix(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, list(range(50)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        report = salvage(str(path))
        assert report.salvageable
        assert 0 < len(report.records) < 50
        # the prefix property: exactly records 0..k-1, in order
        assert report.records == list(range(len(report.records)))
        assert "line" in report.reason

    def test_missing_footer_is_flagged(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [1, 2], footer=False)
        report = salvage(str(path))
        assert report.salvageable
        assert report.records == [1, 2]
        assert "footer" in report.reason

    def test_sequence_gap_stops_salvage(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, list(range(10)))
        lines = path.read_text().splitlines()
        del lines[3]  # drop record seq 2
        path.write_text("\n".join(lines) + "\n")
        report = salvage(str(path))
        assert report.records == [0, 1]
        assert "sequence gap" in report.reason

    def test_corrupt_header_is_unrecoverable(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [1, 2])
        path.write_text("X" + path.read_text()[1:])
        report = salvage(str(path))
        assert report.unrecoverable
        assert report.records == []
        with pytest.raises(SketchFormatError):
            read_journal(str(path))

    def test_empty_file_is_unrecoverable(self, tmp_path):
        path = tmp_path / "empty.journal"
        path.write_text("")
        report = salvage(str(path))
        assert report.unrecoverable
        assert "empty" in report.reason

    def test_strict_reader_names_the_bad_line(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, list(range(5)))
        lines = path.read_text().splitlines()
        lines[3] = lines[3][:-1]  # damage record seq 2, 1-based line 4
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SketchFormatError, match="line 4"):
            read_journal(str(path))

    def test_salvage_never_raises_on_binary_garbage(self, tmp_path):
        path = tmp_path / "noise.journal"
        path.write_bytes(bytes(range(256)) * 4)
        report = salvage(str(path))
        assert report.unrecoverable


class TestKillAtEvent:
    """The headline acceptance scenario: a recorder killed at event *k*
    leaves a journal whose salvaged prefix is usable and deterministic."""

    def test_kill_leaves_exactly_the_visible_prefix(self, tmp_path):
        spec = get_bug(BUG)
        path = tmp_path / "killed.journal"
        with pytest.raises(RecorderKilled) as info:
            record(
                spec.make_program(),
                sketch=SketchKind.RW,
                seed=SEED,
                journal_path=str(path),
                kill_at_event=40,
            )
        assert info.value.at_event == 40

        report = salvage(str(path))
        assert report.salvageable and report.footer is None

        # Ground truth: the same production run, recorded without a kill.
        full, trace = record_with_trace(
            spec.make_program(), sketch=SketchKind.RW, seed=SEED
        )
        expected = sum(
            1 for e in trace.events[:40] if event_visible(SketchKind.RW, e)
        )
        assert len(report.records) == expected

        log, _ = load_sketch_journal(str(path), allow_salvage=True)
        assert log.entries == full.log.entries[:expected]

    def test_salvaged_prefix_replays_deterministically(self, tmp_path):
        spec = get_bug(BUG)
        path = tmp_path / "killed.journal"
        with pytest.raises(RecorderKilled):
            record(
                spec.make_program(),
                sketch=SketchKind.RW,
                seed=SEED,
                journal_path=str(path),
                kill_at_event=120,
            )
        log_a, _ = load_sketch_journal(str(path), allow_salvage=True)
        log_b, _ = load_sketch_journal(str(path), allow_salvage=True)
        assert log_a.entries == log_b.entries

        full = record(spec.make_program(), sketch=SketchKind.RW, seed=SEED)
        config = ExplorerConfig(max_attempts=60)
        first = reproduce(dataclasses.replace(full, log=log_a), config)
        second = reproduce(dataclasses.replace(full, log=log_b), config)
        assert first.success == second.success
        assert first.attempts == second.attempts
        if first.success:
            assert first.complete_log.schedule == second.complete_log.schedule
