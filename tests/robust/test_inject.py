"""The fault injectors themselves: deterministic, seeded, header-aware."""

import pytest

from repro.apps import get_bug
from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.errors import RecorderKilled
from repro.robust.inject import (
    FaultPlan,
    apply_fault,
    drop_line,
    garble_file,
    parse_fault,
    seeded_truncate_offset,
    truncate_file,
)
from repro.robust.journal import salvage, write_sketch_journal


@pytest.fixture
def journal(tmp_path):
    """An intact sketch journal of the deterministic pbzip2 crash run."""
    spec = get_bug("pbzip2-order-free")
    run = record(spec.make_program(), sketch=SketchKind.RW, seed=3)
    path = tmp_path / "sketch.journal"
    write_sketch_journal(run.log, str(path))
    return path


class TestParseFault:
    @pytest.mark.parametrize("kind", ["truncate", "garble", "drop", "kill"])
    def test_parses_every_kind(self, kind):
        plan = parse_fault(f"{kind}@7")
        assert plan == FaultPlan(kind, 7)
        assert kind in plan.describe()

    def test_negative_offsets_are_allowed(self):
        assert parse_fault("truncate@-20").arg == -20

    @pytest.mark.parametrize(
        "spec", ["", "truncate", "explode@3", "kill@x", "@5", "kill@"]
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError, match="bad fault spec"):
            parse_fault(spec)


class TestFileFaults:
    def test_truncate_positive_and_negative(self, journal):
        size = journal.stat().st_size
        assert truncate_file(str(journal), -10) == size - 10
        assert truncate_file(str(journal), 40) == 40
        assert journal.stat().st_size == 40

    def test_truncate_past_the_end_is_a_noop(self, journal):
        size = journal.stat().st_size
        assert truncate_file(str(journal), size + 1000) == size

    def test_seeded_truncate_offset_is_deterministic(self, journal):
        first = seeded_truncate_offset(str(journal), seed=9)
        assert first == seeded_truncate_offset(str(journal), seed=9)
        header_len = journal.read_text().index("\n") + 1
        assert header_len <= first < journal.stat().st_size

    def test_garble_is_deterministic_and_spares_the_header(self, journal):
        original = journal.read_bytes()
        garble_file(str(journal), seed=4)
        first = journal.read_bytes()
        journal.write_bytes(original)
        garble_file(str(journal), seed=4)
        assert journal.read_bytes() == first
        assert first != original
        # line structure is preserved; only record bodies are corrupted
        assert first.count(b"\n") == original.count(b"\n")
        assert first.split(b"\n")[0] == original.split(b"\n")[0]
        assert not salvage(str(journal)).unrecoverable

    def test_drop_line_leaves_a_detectable_gap(self, journal):
        before = journal.read_text().splitlines()
        line = drop_line(str(journal), seed=2)
        after = journal.read_text().splitlines()
        assert 2 <= line <= len(before)
        assert len(after) == len(before) - 1
        assert after[0] == before[0]  # header untouched
        report = salvage(str(journal))
        assert report.salvageable and not report.intact

    def test_apply_fault_dispatches(self, journal):
        note = apply_fault(str(journal), FaultPlan("truncate", 40))
        assert "40" in note
        assert journal.stat().st_size == 40

    def test_apply_fault_rejects_kill(self, journal):
        with pytest.raises(ValueError, match="not a file-level fault"):
            apply_fault(str(journal), FaultPlan("kill", 3))


class TestKillSwitch:
    def test_kills_at_the_requested_event(self):
        spec = get_bug("pbzip2-order-free")
        with pytest.raises(RecorderKilled) as info:
            record(spec.make_program(), seed=3, kill_at_event=25)
        assert info.value.at_event == 25
        assert "25" in str(info.value)
