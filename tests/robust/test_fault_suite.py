"""The fault-injection acceptance matrix.

Every sketch mechanism crossed with every file-level fault: the damaged
journal must still end in a *structured* answer — salvage recovers a
prefix, and the degraded reproducer either re-triggers the bug or
returns a clean failure report.  No ``SketchFormatError`` and no
``ReplayDivergence`` may escape to the caller.
"""

import dataclasses

import pytest

from repro.apps import get_bug
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import ReproductionReport, reproduce_degraded
from repro.core.sketches import SketchKind
from repro.robust.inject import FaultPlan, apply_fault, seeded_truncate_offset
from repro.robust.journal import load_sketch_journal

BUG = "pbzip2-order-free"
SEED = 3  # deterministic use-after-free crash
FAULT_SEED = 11

SKETCHES = [
    SketchKind.SYNC,
    SketchKind.SYS,
    SketchKind.FUNC,
    SketchKind.BB,
    SketchKind.RW,
]


def _plan(fault: str, path: str) -> FaultPlan:
    if fault == "truncate":
        return FaultPlan("truncate", seeded_truncate_offset(path, seed=FAULT_SEED))
    return FaultPlan(fault, FAULT_SEED)


@pytest.mark.parametrize("fault", ["truncate", "garble", "drop"])
@pytest.mark.parametrize("sketch", SKETCHES, ids=lambda s: s.value)
def test_damaged_journal_ends_in_structured_report(tmp_path, sketch, fault):
    spec = get_bug(BUG)
    path = tmp_path / "sketch.journal"
    pristine = record(
        spec.make_program(), sketch=sketch, seed=SEED, journal_path=str(path)
    )
    assert pristine.failed

    apply_fault(str(path), _plan(fault, str(path)))

    # Salvage must absorb the damage (the injectors spare the header).
    log, report = load_sketch_journal(str(path), allow_salvage=True)
    assert not report.unrecoverable
    assert len(log) <= len(pristine.log)
    assert log.entries == pristine.log.entries[: len(log)]

    damaged = dataclasses.replace(pristine, log=log)
    outcome = reproduce_degraded(
        damaged,
        config=ExplorerConfig(max_attempts=50),
        salvaged_entries=len(log),
        dropped_records=report.dropped_lines,
    )
    assert isinstance(outcome, ReproductionReport)
    assert outcome.salvaged_entries == len(log)
    assert outcome.degradation_path
    assert outcome.outcome_reason
    if outcome.success:
        assert outcome.complete_log is not None
        assert outcome.winning_sketch is not None
    else:
        assert "exhausted the degradation ladder" in outcome.outcome_reason
    # describe() must render without touching anything unset
    assert outcome.describe()
