"""Fault-tolerance tests: journaling, salvage, injection, degradation."""
