"""Chaos harness: seeded fault injection and report equivalence.

The headline robustness claim (E17, ``docs/resilience.md``): injected
crashes, hangs, and store corruption change *where* attempt outcomes are
computed — retries, inline fallbacks, quarantined shards — never *what*
the reproduction reports.  These tests pin the ``--chaos`` spec grammar,
the content-keyed verdict function, and the equivalence claim itself
across four suite bugs, including jobs-invariance of the injected-fault
counters and the store-corruption round trip.
"""

import pytest

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.obs.session import ObsSession
from repro.robust.inject import ChaosInjector, ChaosSpec, parse_chaos
from repro.robust.runs import report_signature
from repro.robust.supervise import SuperviseConfig
from repro.sim import MachineConfig
from repro.store import verify_store

#: ~10% combined crash+hang dispatch rate, as in the E17 benchmark.
CHAOS = "crash=0.06,hang=0.04,seed=11"

#: four T1 bugs spanning categories; module-scoped so each records once.
BUGS = ("mysql-atom-log", "apache-atom-buf", "fft-order-sync",
        "pbzip2-order-free")

CFG = ExplorerConfig(max_attempts=60)

#: retries should not sleep inside the test suite.
SUPERVISE = SuperviseConfig(backoff_base=0.0)


@pytest.fixture(scope="module", params=BUGS)
def recorded(request):
    spec = get_bug(request.param)
    seed = find_failing_seed(spec, ncpus=4)
    assert seed is not None
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


class TestParseChaos:
    def test_full_spec(self):
        spec = parse_chaos("crash=0.1,hang=0.05,corrupt=0.02,seed=7")
        assert spec == ChaosSpec(crash=0.1, hang=0.05, corrupt=0.02, seed=7)

    def test_keys_are_optional_and_order_free(self):
        spec = parse_chaos("seed=3, crash=0.5")
        assert spec.crash == 0.5
        assert spec.hang == 0.0 and spec.corrupt == 0.0
        assert spec.seed == 3

    def test_unknown_key_is_rejected(self):
        with pytest.raises(ValueError, match="bad chaos spec"):
            parse_chaos("explode=0.1")

    def test_duplicate_key_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate key"):
            parse_chaos("crash=0.1,crash=0.2")

    def test_rate_out_of_range_is_rejected(self):
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            parse_chaos("hang=1.5")

    def test_non_numeric_rate_is_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_chaos("crash=lots")

    def test_non_integer_seed_is_rejected(self):
        with pytest.raises(ValueError, match="not an integer"):
            parse_chaos("seed=pi")

    def test_empty_spec_is_rejected(self):
        with pytest.raises(ValueError, match="empty chaos spec"):
            parse_chaos("  ,  ")

    def test_active_property(self):
        assert not ChaosSpec(seed=9).active
        assert ChaosSpec(hang=0.01).active


class TestVerdicts:
    def test_verdicts_are_deterministic_in_content(self):
        left = ChaosInjector(ChaosSpec(crash=0.3, hang=0.3, seed=5))
        right = ChaosInjector(ChaosSpec(crash=0.3, hang=0.3, seed=5))
        materials = [f"7|frozenset({i})" for i in range(50)]
        assert [left.verdict(m, 0) for m in materials] == [
            right.verdict(m, 0) for m in materials
        ]

    def test_retry_rolls_again_at_each_try_index(self):
        injector = ChaosInjector(ChaosSpec(crash=0.5, seed=5))
        verdicts = {injector.verdict("same-attempt", t) for t in range(20)}
        assert verdicts == {None, "crash"}  # both outcomes across tries

    def test_zero_rates_never_inject(self):
        injector = ChaosInjector(ChaosSpec(seed=5))
        assert all(
            injector.verdict(f"m{i}", 0) is None for i in range(50)
        )

    def test_certain_crash_always_injects(self):
        injector = ChaosInjector(ChaosSpec(crash=1.0, seed=5))
        assert all(
            injector.verdict(f"m{i}", 0) == "crash" for i in range(20)
        )


class TestReportEquivalence:
    def test_chaos_report_is_byte_identical_to_fault_free(self, recorded):
        baseline = reproduce(recorded, CFG, supervise=SUPERVISE)
        chaotic = reproduce(recorded, CFG, supervise=SUPERVISE, chaos=CHAOS)
        assert report_signature(chaotic) == report_signature(baseline)

    def test_chaos_counters_are_jobs_invariant(self, recorded):
        signatures = []
        counters = []
        for jobs in (1, 2):
            obs = ObsSession.create(trace=False, metrics=True)
            config = ExplorerConfig(max_attempts=60, jobs=jobs, batch_size=4)
            # crash=1.0 makes injection certain even for bugs that
            # reproduce in a couple of attempts.
            report = reproduce(
                recorded, config, obs=obs,
                supervise=SUPERVISE, chaos="crash=1.0,seed=11",
            )
            signatures.append(report_signature(report))
            counters.append(
                {
                    name: obs.metrics.counter(name).value
                    for name in (
                        "supervise.chaos_injected",
                        "supervise.retries",
                        "supervise.inline_fallbacks",
                    )
                }
            )
        assert signatures[0] == signatures[1]
        assert counters[0] == counters[1]
        assert counters[0]["supervise.chaos_injected"] > 0


class TestStoreCorruption:
    def test_corrupted_shard_is_quarantined_and_report_unchanged(
        self, recorded, tmp_path
    ):
        store_dir = str(tmp_path / "store")
        cold = reproduce(recorded, CFG, store=store_dir)

        injector = ChaosInjector(ChaosSpec(corrupt=1.0, seed=3))
        hit = injector.corrupt_store(store_dir, tick=0)
        assert hit is not None
        assert verify_store(store_dir).ok is False

        obs = ObsSession.create(trace=False, metrics=True)
        warm = reproduce(recorded, CFG, store=store_dir, obs=obs)
        assert report_signature(warm) == report_signature(cold)
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("store.quarantined", 0) > 0

    def test_corrupt_store_is_a_no_op_at_rate_zero(self, tmp_path):
        injector = ChaosInjector(ChaosSpec(seed=3))
        assert injector.corrupt_store(str(tmp_path), tick=0) is None
