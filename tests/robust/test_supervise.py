"""Unit tests for the exploration supervisor.

The supervisor's contract (see ``docs/resilience.md``): deadlines,
retries, pool rebuilds, and serial fallback change *where* an attempt's
outcome is computed, never *what* it is — every failure path bottoms out
in the deterministic in-process evaluation of the same attempt.  These
tests drive the supervisor against stub pools whose failures are
scripted, so each path is exercised in isolation; the end-to-end chaos
equivalence lives in ``test_chaos.py``.
"""

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass

from repro.obs.session import ObsSession
from repro.robust.supervise import (
    SuperviseConfig,
    Supervisor,
    backoff_delay,
    default_retry_budget,
)


@dataclass
class Outcome:
    matched: bool = False
    tag: str = ""


class StubFuture:
    """A future whose result is scripted: an outcome or an exception."""

    def __init__(self, outcome=None, error=None):
        self.outcome = outcome
        self.error = error
        self.cancelled = False

    def result(self, timeout=None):
        if self.error is not None:
            raise self.error
        return self.outcome

    def cancel(self):
        self.cancelled = True


class StubPool:
    def __init__(self):
        self.shutdowns = []

    def shutdown(self, wait=False, cancel_futures=False):
        self.shutdowns.append((wait, cancel_futures))


def _metrics_session():
    return ObsSession.create(trace=False, metrics=True)


def _counter(obs, name):
    return obs.metrics.counter(name).value


def _supervisor(config, obs, futures=None, pools=None, dispatch_log=None):
    """A supervisor over scripted stubs.

    ``futures`` is a mutable list popped per dispatch; ``pools`` likewise
    per factory call (defaulting to fresh StubPools forever).
    """
    pools = pools if pools is not None else []
    dispatch_log = dispatch_log if dispatch_log is not None else []

    def factory():
        return pools.pop(0) if pools else StubPool()

    def dispatch(pool, constraints, seed, mine):
        dispatch_log.append((len(constraints), seed))
        return futures.pop(0)

    def inline(constraints, seed, mine):
        return Outcome(matched=False, tag=f"inline:{seed}")

    return Supervisor(
        config=config,
        obs=obs,
        pool_factory=factory,
        dispatch=dispatch,
        inline=inline,
        max_attempts=20,
    )


class TestPolicyFunctions:
    def test_backoff_is_exponential_and_clock_free(self):
        config = SuperviseConfig(backoff_base=0.02, backoff_factor=2.0)
        assert backoff_delay(config, 1) == 0.02
        assert backoff_delay(config, 2) == 0.04
        assert backoff_delay(config, 3) == 0.08
        assert backoff_delay(config, 0) == 0.0

    def test_zero_base_disables_backoff(self):
        config = SuperviseConfig(backoff_base=0.0)
        assert backoff_delay(config, 3) == 0.0

    def test_default_budget_scales_with_attempts_with_a_floor(self):
        assert default_retry_budget(0) == 8
        assert default_retry_budget(3) == 8
        assert default_retry_budget(100) == 200


class TestInlineMode:
    def test_no_pool_factory_means_inline_evaluation(self):
        obs = _metrics_session()
        sup = Supervisor(
            obs=obs,
            inline=lambda c, s, m: Outcome(matched=(s == 1)),
            max_attempts=10,
        )
        outcomes = sup.evaluate_batch(
            [(frozenset(), 0, None), (frozenset(), 1, None),
             (frozenset(), 2, None)],
            mine=True,
        )
        # Stops at the first matched outcome, like the engine's merge.
        assert [o.matched for o in outcomes] == [False, True]
        assert _counter(obs, "supervise.retries") == 0

    def test_cached_outcomes_pass_through_untouched(self):
        cached = Outcome(matched=True, tag="cached")
        sup = Supervisor(inline=lambda c, s, m: Outcome(), max_attempts=10)
        outcomes = sup.evaluate_batch([(frozenset(), 0, cached)], mine=True)
        assert outcomes == [cached]


class TestHangs:
    def test_hung_attempt_times_out_retries_then_runs_inline(self):
        obs = _metrics_session()
        config = SuperviseConfig(
            attempt_timeout=0.001, max_retries=1, backoff_base=0.0
        )
        futures = [
            StubFuture(error=FuturesTimeout()),
            StubFuture(error=FuturesTimeout()),
        ]
        sup = _supervisor(config, obs, futures=futures)
        outcomes = sup.evaluate_batch([(frozenset(), 7, None)], mine=True)
        assert outcomes[0].tag == "inline:7"
        assert _counter(obs, "supervise.timeouts") == 2
        assert _counter(obs, "supervise.retries") == 1
        assert _counter(obs, "supervise.inline_fallbacks") == 1

    def test_retry_after_hang_can_succeed_on_the_pool(self):
        obs = _metrics_session()
        config = SuperviseConfig(
            attempt_timeout=0.001, max_retries=2, backoff_base=0.0
        )
        futures = [
            StubFuture(error=FuturesTimeout()),
            StubFuture(outcome=Outcome(matched=True, tag="pooled")),
        ]
        sup = _supervisor(config, obs, futures=futures)
        outcomes = sup.evaluate_batch([(frozenset(), 3, None)], mine=True)
        assert outcomes[0].tag == "pooled"
        assert _counter(obs, "supervise.timeouts") == 1
        assert _counter(obs, "supervise.inline_fallbacks") == 0


class TestWorkerDeath:
    def test_broken_pool_is_rebuilt_and_the_attempt_retried(self):
        obs = _metrics_session()
        config = SuperviseConfig(max_retries=2, backoff_base=0.0)
        futures = [
            StubFuture(error=BrokenExecutor("worker died")),
            StubFuture(outcome=Outcome(tag="retried")),
        ]
        sup = _supervisor(config, obs, futures=futures)
        outcomes = sup.evaluate_batch([(frozenset(), 5, None)], mine=True)
        assert outcomes[0].tag == "retried"
        assert _counter(obs, "supervise.worker_deaths") == 1
        assert _counter(obs, "supervise.pool_rebuilds") == 1
        assert sup.rebuilds == 1

    def test_collateral_futures_are_resubmitted_after_a_rebuild(self):
        obs = _metrics_session()
        config = SuperviseConfig(max_retries=2, backoff_base=0.0)
        dispatch_log = []
        futures = [
            StubFuture(error=BrokenExecutor("worker died")),  # slot 0, try 0
            StubFuture(outcome=Outcome(tag="one")),           # slot 1, try 0
            StubFuture(outcome=Outcome(tag="one-again")),     # slot 1 resubmit
            StubFuture(outcome=Outcome(tag="zero-retry")),    # slot 0 retry
        ]
        sup = _supervisor(config, obs, futures=futures, dispatch_log=dispatch_log)
        outcomes = sup.evaluate_batch(
            [(frozenset(), 0, None), (frozenset(), 1, None)], mine=True
        )
        assert [o.tag for o in outcomes] == ["zero-retry", "one-again"]
        # 2 initial + 1 collateral resubmit + 1 retry of the failed slot.
        assert len(dispatch_log) == 4

    def test_repeated_failures_degrade_to_serial(self):
        obs = _metrics_session()
        config = SuperviseConfig(
            max_retries=3, backoff_base=0.0, pool_failure_limit=0
        )
        futures = [StubFuture(error=BrokenExecutor("dead"))]
        sup = _supervisor(config, obs, futures=futures)
        outcomes = sup.evaluate_batch([(frozenset(), 9, None)], mine=True)
        assert outcomes[0].tag == "inline:9"
        assert sup.serial is True
        assert _counter(obs, "supervise.serial_fallbacks") == 1
        # Serial mode: the next batch never touches a pool.
        outcomes = sup.evaluate_batch([(frozenset(), 10, None)], mine=True)
        assert outcomes[0].tag == "inline:10"

    def test_dispatch_error_becomes_a_crash_fault(self):
        obs = _metrics_session()
        config = SuperviseConfig(max_retries=0, backoff_base=0.0)

        def dispatch(pool, constraints, seed, mine):
            raise RuntimeError("cannot pickle")

        sup = Supervisor(
            config=config,
            obs=obs,
            pool_factory=StubPool,
            dispatch=dispatch,
            inline=lambda c, s, m: Outcome(tag=f"inline:{s}"),
            max_attempts=10,
        )
        outcomes = sup.evaluate_batch([(frozenset(), 4, None)], mine=True)
        assert outcomes[0].tag == "inline:4"
        assert _counter(obs, "supervise.worker_deaths") == 1


class TestRetryBudget:
    def test_exhausted_budget_goes_straight_inline(self):
        obs = _metrics_session()
        config = SuperviseConfig(
            max_retries=5, backoff_base=0.0, retry_budget=0
        )
        futures = [StubFuture(error=FuturesTimeout())]
        sup = _supervisor(
            SuperviseConfig(
                attempt_timeout=0.001, max_retries=5, backoff_base=0.0,
                retry_budget=0,
            ),
            obs, futures=futures,
        )
        assert config.retry_budget == 0
        outcomes = sup.evaluate_batch([(frozenset(), 2, None)], mine=True)
        assert outcomes[0].tag == "inline:2"
        assert _counter(obs, "supervise.retries") == 0
        assert _counter(obs, "supervise.inline_fallbacks") == 1

    def test_budget_is_charged_across_the_session(self):
        obs = _metrics_session()
        config = SuperviseConfig(
            attempt_timeout=0.001, max_retries=1, backoff_base=0.0,
            retry_budget=1,
        )
        futures = [
            StubFuture(error=FuturesTimeout()),  # slot A try 0
            StubFuture(error=FuturesTimeout()),  # slot A retry (budget gone)
            StubFuture(error=FuturesTimeout()),  # slot B try 0: no retry left
        ]
        sup = _supervisor(config, obs, futures=futures)
        sup.evaluate_batch([(frozenset(), 0, None)], mine=True)
        sup.evaluate_batch([(frozenset(), 1, None)], mine=True)
        assert sup.retries_charged == 1
        assert _counter(obs, "supervise.retries") == 1
        assert _counter(obs, "supervise.inline_fallbacks") == 2


class TestAttemptErrors:
    def test_genuine_attempt_errors_are_not_retried(self):
        obs = _metrics_session()
        futures = [StubFuture(error=ValueError("the attempt itself raised"))]
        calls = []

        def inline(constraints, seed, mine):
            calls.append(seed)
            raise ValueError("the attempt itself raised")

        sup = Supervisor(
            config=SuperviseConfig(backoff_base=0.0),
            obs=obs,
            pool_factory=StubPool,
            dispatch=lambda pool, c, s, m: futures.pop(0),
            inline=inline,
            max_attempts=10,
        )
        try:
            sup.evaluate_batch([(frozenset(), 6, None)], mine=True)
            raised = False
        except ValueError:
            raised = True
        # The error re-raises deterministically from the inline path.
        assert raised and calls == [6]
        assert _counter(obs, "supervise.retries") == 0


class TestShutdown:
    def test_shutdown_is_idempotent_and_joins_workers(self):
        pool = StubPool()
        sup = Supervisor(
            pool_factory=lambda: pool,
            dispatch=lambda p, c, s, m: StubFuture(outcome=Outcome()),
            inline=lambda c, s, m: Outcome(),
            max_attempts=10,
        )
        sup.evaluate_batch([(frozenset(), 0, None)], mine=True)
        sup.shutdown(wait=True)
        sup.shutdown(wait=True)
        assert pool.shutdowns == [(True, True)]
        assert sup.serial is True
        # Post-shutdown batches still evaluate (inline), never rebuild.
        outcomes = sup.evaluate_batch([(frozenset(), 1, None)], mine=True)
        assert outcomes[0].matched is False
