"""Graceful degradation: coarser sketches derived from damaged logs."""

import dataclasses

import pytest

from repro.apps import get_bug
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import (
    degradation_ladder,
    reproduce_degraded,
)
from repro.core.sketches import SketchKind, visible_kinds
from repro.core.sketchlog import SketchLog, derive_coarser
from repro.errors import SimUsageError
from repro.sim.failures import Failure, FailureKind


@pytest.fixture(scope="module")
def recorded():
    spec = get_bug("pbzip2-order-free")
    run = record(spec.make_program(), sketch=SketchKind.RW, seed=3)
    assert run.failed
    return run


class TestDeriveCoarser:
    def test_keeps_only_kinds_the_target_watches(self, recorded):
        coarse = derive_coarser(recorded.log, SketchKind.SYNC)
        allowed = visible_kinds(SketchKind.SYNC)
        assert coarse.sketch is SketchKind.SYNC
        assert coarse.entries
        assert all(entry.kind in allowed for entry in coarse.entries)

    def test_is_an_ordered_subsequence(self, recorded):
        coarse = derive_coarser(recorded.log, SketchKind.SYS)
        remaining = iter(recorded.log.entries)
        for entry in coarse.entries:
            assert any(entry == candidate for candidate in remaining)

    def test_same_level_is_identity(self, recorded):
        assert derive_coarser(recorded.log, SketchKind.RW) is recorded.log

    def test_refining_upward_is_rejected(self, recorded):
        sync = derive_coarser(recorded.log, SketchKind.SYNC)
        with pytest.raises(SimUsageError):
            derive_coarser(sync, SketchKind.RW)


class TestLadder:
    def test_rw_descends_the_full_ladder(self):
        assert degradation_ladder(SketchKind.RW) == [
            SketchKind.RW,
            SketchKind.BB,
            SketchKind.FUNC,
            SketchKind.SYS,
            SketchKind.SYNC,
        ]

    def test_sync_is_a_single_rung(self):
        assert degradation_ladder(SketchKind.SYNC) == [SketchKind.SYNC]

    def test_none_falls_back_to_sync(self):
        assert degradation_ladder(SketchKind.NONE) == [SketchKind.SYNC]


class TestReproduceDegraded:
    def test_pristine_log_wins_at_the_top_rung(self, recorded):
        report = reproduce_degraded(
            recorded, config=ExplorerConfig(max_attempts=100)
        )
        assert report.success
        assert report.winning_sketch is SketchKind.RW
        assert not report.degraded
        assert report.degradation_path[0].sketch is SketchKind.RW
        assert "reproduced at the rw rung" in report.outcome_reason
        assert report.complete_log is not None

    def test_truncated_log_reports_salvage_accounting(self, recorded):
        partial = SketchLog(sketch=recorded.sketch)
        for entry in recorded.log.entries[:50]:
            partial.append(entry)
        damaged = dataclasses.replace(recorded, log=partial)
        report = reproduce_degraded(
            damaged,
            config=ExplorerConfig(max_attempts=100),
            salvaged_entries=50,
            dropped_records=3,
        )
        assert report.salvaged_entries == 50
        assert report.dropped_records == 3
        assert report.degradation_path
        assert "salvaged 50 entries" in report.describe()
        assert report.success  # 50 RW entries still pin the crash down

    def test_exhaustion_is_a_structured_report_not_a_traceback(self, recorded):
        # A failure signature no replay can ever match: every rung must
        # run out of attempts, and the report must say so cleanly.
        never = Failure(kind=FailureKind.ASSERTION, where="unreachable sentinel")
        doomed = dataclasses.replace(recorded, failure=never)
        report = reproduce_degraded(doomed, config=ExplorerConfig(max_attempts=10))
        assert not report.success
        assert report.winning_sketch is None
        assert "exhausted the degradation ladder" in report.outcome_reason
        assert [r.sketch for r in report.degradation_path] == degradation_ladder(
            recorded.sketch
        )
        assert all(not rung.success for rung in report.degradation_path)
        assert all(rung.reason for rung in report.degradation_path)
        assert "NOT reproduced" in report.describe()

    def test_seed_backoff_keeps_the_session_deterministic(self, recorded):
        partial = SketchLog(sketch=recorded.sketch)
        for entry in recorded.log.entries[:30]:
            partial.append(entry)
        damaged = dataclasses.replace(recorded, log=partial)
        config = ExplorerConfig(max_attempts=40)
        first = reproduce_degraded(damaged, config=config)
        second = reproduce_degraded(damaged, config=config)
        assert first.success == second.success
        assert first.attempts == second.attempts
        assert [r.sketch for r in first.degradation_path] == [
            r.sketch for r in second.degradation_path
        ]
