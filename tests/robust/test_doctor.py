"""`pres doctor` triage, exit codes, and the fault-tolerance CLI surface."""

import io
import json
import os

import pytest

from repro.apps import get_bug
from repro.cli import main
from repro.core.recorder import record, record_with_trace
from repro.core.sketches import SketchKind
from repro.robust.doctor import OK, SALVAGEABLE, UNRECOVERABLE, examine, write_salvaged
from repro.robust.journal import write_sketch_journal
from repro.sim.persist import dump_trace, load_trace, save_trace_journaled

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "corrupt_sketch.journal"
)


@pytest.fixture
def sketch_journal(tmp_path):
    spec = get_bug("pbzip2-order-free")
    run = record(spec.make_program(), sketch=SketchKind.RW, seed=3)
    path = tmp_path / "sketch.journal"
    write_sketch_journal(run.log, str(path))
    return path


@pytest.fixture
def trace(tmp_path):
    spec = get_bug("pbzip2-order-free")
    _, trace = record_with_trace(spec.make_program(), sketch=SketchKind.RW, seed=3)
    return trace


class TestExamine:
    def test_intact_journal_is_ok(self, sketch_journal):
        diagnosis = examine(str(sketch_journal))
        assert diagnosis.status == OK
        assert diagnosis.format == "sketch-journal"
        assert diagnosis.exit_code == 0

    def test_torn_journal_is_salvageable_and_heals(self, tmp_path, sketch_journal):
        data = sketch_journal.read_bytes()
        sketch_journal.write_bytes(data[: len(data) // 2])
        diagnosis = examine(str(sketch_journal))
        assert diagnosis.status == SALVAGEABLE
        assert diagnosis.exit_code == 1
        assert diagnosis.valid_records > 0

        healed = tmp_path / "healed.journal"
        write_salvaged(diagnosis, str(healed))
        again = examine(str(healed))
        assert again.status == OK
        assert again.valid_records == diagnosis.valid_records

    def test_garbage_is_unrecoverable(self, tmp_path):
        path = tmp_path / "noise.log"
        path.write_text("total nonsense\n")
        diagnosis = examine(str(path))
        assert diagnosis.status == UNRECOVERABLE
        assert diagnosis.exit_code == 2

    def test_sketch_json_blob_valid_and_corrupt(self, tmp_path):
        spec = get_bug("pbzip2-order-free")
        run = record(spec.make_program(), sketch=SketchKind.RW, seed=3)
        path = tmp_path / "sketch.json"
        path.write_text(run.log.to_json())
        assert examine(str(path)).status == OK

        path.write_text(path.read_text()[:-30])
        assert examine(str(path)).status == UNRECOVERABLE

    def test_trace_jsonl_valid_and_torn(self, tmp_path, trace):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            dump_trace(trace, handle)
        assert examine(str(path)).status == OK

        lines = path.read_text().splitlines()
        lines[40] = lines[40][: len(lines[40]) // 2]
        path.write_text("\n".join(lines) + "\n")
        diagnosis = examine(str(path))
        assert diagnosis.status == SALVAGEABLE
        assert diagnosis.valid_records > 0

        out = tmp_path / "trace.salvaged"
        write_salvaged(diagnosis, str(out))
        with open(out, "r", encoding="utf-8") as handle:
            salvaged = load_trace(handle)
        assert len(salvaged.events) == diagnosis.valid_records


class TestDoctorCli:
    def test_exit_0_on_intact(self, capsys, sketch_journal):
        assert main(["doctor", str(sketch_journal)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_exit_1_writes_salvaged_file(self, capsys, tmp_path, sketch_journal):
        data = sketch_journal.read_bytes()
        sketch_journal.write_bytes(data[: len(data) - 7])
        out = tmp_path / "recovered.journal"
        assert main(["doctor", str(sketch_journal), "--out", str(out)]) == 1
        assert "salvaged log written" in capsys.readouterr().out
        assert main(["doctor", str(out)]) == 0

    def test_exit_2_on_garbage(self, capsys, tmp_path):
        path = tmp_path / "noise.log"
        path.write_text("total nonsense\n")
        assert main(["doctor", str(path)]) == 2

    def test_exit_2_on_missing_file(self, capsys, tmp_path):
        assert main(["doctor", str(tmp_path / "no-such-file")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checked_in_corrupt_fixture_is_salvageable(self, capsys, tmp_path):
        out = tmp_path / "fixture.salvaged"
        assert main(["doctor", FIXTURE, "--out", str(out)]) == 1
        assert out.exists()
        assert main(["doctor", str(out)]) == 0


class TestFaultToleranceCli:
    def test_record_kill_exits_cleanly_with_salvage_note(self, capsys, tmp_path):
        journal = tmp_path / "killed.journal"
        code = main(
            ["record", "pbzip2-order-free", "--seed", "3", "--sketch", "rw",
             "--journal", str(journal), "--inject-fault", "kill@40"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault injected" in out
        assert "salvaged" in out
        assert main(["doctor", str(journal), "--out",
                     str(tmp_path / "k.salvaged")]) == 1

    def test_record_file_fault_needs_a_target(self, capsys):
        code = main(
            ["record", "pbzip2-order-free", "--seed", "3",
             "--inject-fault", "truncate@100"]
        )
        assert code == 2
        assert "--journal" in capsys.readouterr().err

    def test_bad_fault_spec_exits_2(self, capsys):
        code = main(
            ["record", "pbzip2-order-free", "--seed", "3",
             "--inject-fault", "explode@3"]
        )
        assert code == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_reproduce_salvage_degrade_pipeline(self, capsys, tmp_path):
        journal = tmp_path / "sketch.journal"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3", "--sketch", "rw",
             "--journal", str(journal), "--inject-fault", "truncate@900",
             "--salvage", "--degrade", "--max-attempts", "100"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault injected" in out
        assert "salvaged" in out
        assert "rung" in out
        assert "outcome:" in out

    def test_reproduce_salvage_requires_journal(self, capsys):
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3", "--salvage"]
        )
        assert code == 2
        assert "--salvage needs --journal" in capsys.readouterr().err

    def test_reproduce_kill_is_a_clean_failure(self, capsys, tmp_path):
        journal = tmp_path / "killed.journal"
        code = main(
            ["reproduce", "pbzip2-order-free", "--seed", "3",
             "--journal", str(journal), "--inject-fault", "kill@20"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "nothing to reproduce" in err

    def test_replay_salvage_on_torn_trace_journal(self, capsys, tmp_path, trace):
        path = tmp_path / "trace.journal"
        save_trace_journaled(trace, str(path))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        code = main(
            ["replay", "pbzip2-order-free", "--log", str(path), "--salvage"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "salvaged" in out
        assert "matching" in out

    def test_replay_salvage_on_intact_trace_journal_reproduces(
        self, capsys, tmp_path, trace
    ):
        path = tmp_path / "trace.journal"
        save_trace_journaled(trace, str(path))
        code = main(
            ["replay", "pbzip2-order-free", "--log", str(path), "--salvage"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced:" in out

    def test_corrupt_complete_log_exits_2_with_hint(self, capsys, tmp_path):
        path = tmp_path / "complete.json"
        path.write_text('{"program_name": "x", "schedule": [1, 2')
        code = main(["replay", "pbzip2-order-free", "--log", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
