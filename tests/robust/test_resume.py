"""Resumable runs: the per-run journal and ``--resume`` round trip.

The contract (``docs/resilience.md``): a run journal records every
decided attempt as it folds, so a reproduction killed mid-exploration
can be resumed and finish with a report byte-identical to an
uninterrupted run — the resumed process replays only the undecided
attempts.  Run identity (:func:`~repro.robust.runs.run_meta`) pins
everything that shapes the schedule and deliberately excludes ``jobs``,
so an interrupted parallel run may resume serially and still match.
"""

import pytest

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.errors import SimUsageError
from repro.robust.runs import (
    RunJournalCache,
    list_runs,
    report_signature,
    resume_run,
    run_journal_path,
    run_meta,
    start_run,
)
from repro.sim import MachineConfig

BUG = "mysql-atom-log"  # explores ~19 attempts: room to interrupt mid-run

CFG = ExplorerConfig(max_attempts=40)


@pytest.fixture(scope="module")
def recorded():
    spec = get_bug(BUG)
    seed = find_failing_seed(spec, ncpus=4)
    assert seed is not None
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )


class InterruptAfter(RunJournalCache):
    """A run journal that simulates a kill after N journaled attempts."""

    def __init__(self, *args, interrupt_after: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.interrupt_after = interrupt_after
        self.puts = 0

    def put(self, key, outcome):
        super().put(key, outcome)
        self.puts += 1
        if self.puts >= self.interrupt_after:
            raise KeyboardInterrupt


class TestResumeRoundTrip:
    def test_killed_run_resumes_to_an_identical_report(
        self, recorded, tmp_path
    ):
        runs_dir = str(tmp_path / "runs")
        baseline = reproduce(recorded, CFG)
        meta = run_meta(recorded, CFG)

        run = InterruptAfter(
            run_journal_path(runs_dir, "trip"), meta=meta, interrupt_after=5
        )
        partial = reproduce(recorded, CFG, run=run)
        assert partial.interrupted is True
        assert partial.success is False

        resumed = resume_run(runs_dir, "trip", expect_meta=meta)
        assert resumed.completed is False
        assert resumed.resumed_attempts == 5
        finished = reproduce(recorded, CFG, run=resumed)
        assert finished.interrupted is False
        assert report_signature(finished) == report_signature(baseline)

    def test_interrupted_parallel_run_resumes_serially(
        self, recorded, tmp_path
    ):
        runs_dir = str(tmp_path / "runs")
        baseline = reproduce(recorded, CFG)
        meta = run_meta(recorded, CFG)
        assert "jobs" not in meta  # the schedule is jobs-invariant

        run = InterruptAfter(
            run_journal_path(runs_dir, "par"), meta=meta, interrupt_after=4
        )
        partial = reproduce(recorded, CFG, jobs=2, run=run)
        assert partial.interrupted is True

        resumed = resume_run(runs_dir, "par", expect_meta=meta)
        finished = reproduce(recorded, CFG, jobs=1, run=resumed)
        assert report_signature(finished) == report_signature(baseline)

    def test_completed_run_replays_entirely_from_the_journal(
        self, recorded, tmp_path
    ):
        runs_dir = str(tmp_path / "runs")
        meta = run_meta(recorded, CFG)
        first = reproduce(
            recorded, CFG, run=start_run(runs_dir, "done", meta=meta)
        )

        resumed = resume_run(runs_dir, "done", expect_meta=meta)
        assert resumed.completed is True
        assert resumed.resumed_attempts == first.attempts
        replayed = reproduce(recorded, CFG, run=resumed)
        assert report_signature(replayed) == report_signature(first)
        assert replayed.cache_hits == first.attempts


class TestRunIdentity:
    def test_meta_mismatch_refuses_to_resume(self, recorded, tmp_path):
        runs_dir = str(tmp_path / "runs")
        meta = run_meta(recorded, CFG)
        reproduce(recorded, CFG, run=start_run(runs_dir, "r", meta=meta))

        other = run_meta(recorded, ExplorerConfig(max_attempts=99))
        with pytest.raises(SimUsageError, match="different reproduction"):
            resume_run(runs_dir, "r", expect_meta=other)

    def test_unknown_run_id_lists_known_runs(self, recorded, tmp_path):
        runs_dir = str(tmp_path / "runs")
        meta = run_meta(recorded, CFG)
        reproduce(recorded, CFG, run=start_run(runs_dir, "known", meta=meta))
        with pytest.raises(SimUsageError, match="known runs: known"):
            resume_run(runs_dir, "nope")

    def test_duplicate_fresh_run_id_is_rejected(self, recorded, tmp_path):
        runs_dir = str(tmp_path / "runs")
        meta = run_meta(recorded, CFG)
        reproduce(recorded, CFG, run=start_run(runs_dir, "dup", meta=meta))
        with pytest.raises(SimUsageError, match="already exists"):
            start_run(runs_dir, "dup", meta=meta)

    def test_path_escaping_run_ids_are_rejected(self, tmp_path):
        for bad in ("../evil", "a/b", "", ".hidden", "-dash"):
            with pytest.raises(SimUsageError, match="bad run id"):
                run_journal_path(str(tmp_path), bad)

    def test_list_runs_is_sorted_and_tolerates_missing_dir(self, tmp_path):
        runs_dir = str(tmp_path / "runs")
        assert list_runs(runs_dir) == []
        for run_id in ("b", "a"):
            start_run(runs_dir, run_id).close()
        assert list_runs(runs_dir) == ["a", "b"]
