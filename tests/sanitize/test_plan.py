"""ReplayPlan assembly: ranking, applicability, evidence gate, JSON."""

import pytest

from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sanitize.plan import (
    MAX_PIN_CONSTRAINTS,
    MAX_PLAN_CANDIDATES,
    MIN_PLAN_EVIDENCE,
    ReplayPlan,
    build_plan,
)

from tests.conftest import counter_program, deadlock_program, find_seed


def plan_of(program, seed=0, **kwargs):
    log = record(program, sketch=SketchKind.RW, seed=seed).log
    return build_plan(log, **kwargs)


@pytest.fixture(scope="module")
def counter_plan():
    # big enough that the evidence mass clears MIN_PLAN_EVIDENCE
    return plan_of(counter_program(nworkers=3, iters=5, locked=False))


@pytest.fixture(scope="module")
def deadlock_plan():
    program = deadlock_program()
    return plan_of(program, seed=find_seed(program, want_failure=False))


class TestRanking:
    def test_pin_all_ranks_first(self, counter_plan):
        assert counter_plan.candidates
        first = counter_plan.candidates[0]
        assert first.source == "pin-all"
        assert len(first.constraints) <= MAX_PIN_CONSTRAINTS

    def test_pin_all_unions_every_finding_pin(self, counter_plan):
        pool = {race.pin() for race in counter_plan.races}
        for violation in counter_plan.violations:
            pool.update(violation.pins())
        expected = min(len(pool), MAX_PIN_CONSTRAINTS)
        assert len(counter_plan.candidates[0].constraints) == expected

    def test_scored_tail_is_sorted_by_confidence(self, counter_plan):
        tail = counter_plan.candidates[1:]
        confidences = [candidate.confidence for candidate in tail]
        assert confidences == sorted(confidences, reverse=True)

    def test_candidates_are_deduplicated_and_capped(self, counter_plan):
        sets = [candidate.constraints for candidate in counter_plan.candidates]
        assert len(sets) == len(set(sets))
        assert len(sets) <= MAX_PLAN_CANDIDATES
        small = plan_of(
            counter_program(nworkers=3, iters=5, locked=False),
            max_candidates=3,
        )
        assert len(small.candidates) == 3

    def test_clean_locked_program_yields_an_empty_plan(self):
        plan = plan_of(counter_program(locked=True))
        assert plan.candidates == ()
        assert plan.races == ()
        assert plan.violations == ()


class TestApplicability:
    def test_rw_replay_gets_no_seeds(self, counter_plan):
        assert counter_plan.seeds_for(SketchKind.RW) == ()

    def test_memory_candidates_ship_below_rw_with_enough_evidence(
        self, counter_plan
    ):
        assert counter_plan.evidence >= MIN_PLAN_EVIDENCE
        seeds = counter_plan.seeds_for(SketchKind.SYNC)
        assert seeds
        assert seeds[0] == counter_plan.candidates[0].constraints

    def test_sparse_evidence_holds_memory_candidates_back(self):
        plan = plan_of(counter_program(nworkers=2, iters=1, locked=False))
        assert plan.candidates  # findings exist ...
        assert plan.evidence < MIN_PLAN_EVIDENCE
        assert plan.seeds_for(SketchKind.SYNC) == ()  # ... but do not ship

    def test_deadlock_triggers_apply_only_to_sketchless_replay(
        self, deadlock_plan
    ):
        assert deadlock_plan.deadlocks
        assert deadlock_plan.seeds_for(SketchKind.SYNC) == ()
        seeds = deadlock_plan.seeds_for(SketchKind.NONE)
        assert seeds == (deadlock_plan.candidates[0].constraints,)
        assert deadlock_plan.candidates[0].family == "lock"


class TestSerialization:
    def test_json_round_trip_is_lossless(self, counter_plan):
        assert ReplayPlan.from_json(counter_plan.to_json()) == counter_plan

    def test_deadlock_plan_round_trips(self, deadlock_plan):
        assert ReplayPlan.from_json(deadlock_plan.to_json()) == deadlock_plan

    def test_format_tag_is_checked(self):
        with pytest.raises(ValueError):
            ReplayPlan.from_json('{"sketch": "RW"}')

    def test_describe_summarizes_findings_and_candidates(self, counter_plan):
        text = counter_plan.describe()
        assert "replay plan from RW sketch" in text
        assert "#0 [pin-all" in text
