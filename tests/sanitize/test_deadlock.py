"""Deadlock prediction from sketch logs: cycles and trigger constraints."""

from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sanitize.deadlock import (
    DEADLOCK_BASE_CONFIDENCE,
    predict_deadlocks,
    sketch_lock_order,
)

from tests.conftest import deadlock_program, find_seed, run_program


def clean_seed(program):
    return find_seed(program, want_failure=False)


class TestPrediction:
    def test_inversion_predicted_from_a_clean_sync_recording(self):
        program = deadlock_program()
        log = record(
            program, sketch=SketchKind.SYNC, seed=clean_seed(program)
        ).log
        deadlocks = predict_deadlocks(log)
        assert len(deadlocks) == 1
        (deadlock,) = deadlocks
        assert set(deadlock.cycle) == {"A", "B"}
        assert len(deadlock.tids) == 2
        assert deadlock.confidence == DEADLOCK_BASE_CONFIDENCE

    def test_trigger_inverts_the_production_lock_order(self):
        program = deadlock_program()
        log = record(
            program, sketch=SketchKind.SYNC, seed=clean_seed(program)
        ).log
        (deadlock,) = predict_deadlocks(log)
        assert deadlock.trigger
        for constraint in deadlock.trigger:
            assert constraint.before.family == "lock"
            assert constraint.after.family == "lock"
            assert {constraint.before.key, constraint.after.key} <= {"A", "B"}
        # the two hops come from the two distinct inverting threads
        assert {c.before.tid for c in deadlock.trigger} == set(deadlock.tids)

    def test_sketchless_log_predicts_nothing(self):
        program = deadlock_program()
        log = record(
            program, sketch=SketchKind.NONE, seed=clean_seed(program)
        ).log
        assert predict_deadlocks(log) == []

    def test_sketch_lock_order_matches_the_trace_sweep(self):
        from repro.analysis.lockorder import collect_lock_order

        program = deadlock_program()
        seed = clean_seed(program)
        log = record(program, sketch=SketchKind.SYNC, seed=seed).log
        sketch_pairs = {
            (e.holder, e.acquired) for e in sketch_lock_order(log)
        }
        trace_pairs = {
            (e.holder, e.acquired)
            for e in collect_lock_order(run_program(program, seed).events)
        }
        assert sketch_pairs == trace_pairs

    def test_describe_names_the_cycle(self):
        program = deadlock_program()
        log = record(
            program, sketch=SketchKind.SYNC, seed=clean_seed(program)
        ).log
        (deadlock,) = predict_deadlocks(log)
        text = deadlock.describe()
        assert "A" in text and "B" in text
        assert f"{DEADLOCK_BASE_CONFIDENCE:.2f}" in text

    def test_rw_recording_predicts_the_same_cycle(self):
        program = deadlock_program()
        log = record(
            program, sketch=SketchKind.RW, seed=clean_seed(program)
        ).log
        deadlocks = predict_deadlocks(log)
        assert len(deadlocks) == 1
        assert set(deadlocks[0].cycle) == {"A", "B"}
