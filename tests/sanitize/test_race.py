"""Race prediction from sketch logs: HB sweep, locksets, confidence."""

from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sanitize.race import (
    LOCKSET_BONUS,
    RACE_BASE_CONFIDENCE,
    TRYLOCK_PENALTY,
    SketchHB,
    predict_races,
)
from repro.sim import Program

from tests.conftest import counter_program


def rw_log(program, seed=0):
    return record(program, sketch=SketchKind.RW, seed=seed).log


class TestPrediction:
    def test_unprotected_counter_races_are_predicted(self):
        races = predict_races(rw_log(counter_program(locked=False)))
        assert races
        assert all(race.addr == "counter" for race in races)

    def test_locked_counter_predicts_no_races(self):
        assert predict_races(rw_log(counter_program(locked=True))) == []

    def test_coarser_logs_yield_no_predictions(self):
        log = record(
            counter_program(locked=False), sketch=SketchKind.SYNC, seed=0
        ).log
        assert predict_races(log) == []

    def test_predictions_pin_production_order(self):
        for race in predict_races(rw_log(counter_program(locked=False))):
            assert race.first.index < race.second.index
            pin = race.pin()
            assert pin.before == race.first.ref()
            assert pin.after == race.second.ref()
            assert pin.before.family == "mem"

    def test_unprotected_shared_write_gets_the_lockset_bonus(self):
        races = predict_races(rw_log(counter_program(locked=False)))
        expected = round(RACE_BASE_CONFIDENCE + LOCKSET_BONUS, 4)
        assert {race.confidence for race in races} == {expected}


class TestHappensBeforeEdges:
    def test_spawn_and_join_order_parent_and_child(self):
        def child(ctx):
            yield ctx.write("x", 1)

        def main(ctx):
            yield ctx.write("x", 0)  # before spawn: ordered by spawn edge
            tid = yield ctx.spawn(child)
            yield ctx.join(tid)
            yield ctx.read("x")  # after join: ordered by join edge

        races = predict_races(rw_log(Program(name="sj", main=main)))
        assert races == []

    def test_unlock_lock_edge_orders_critical_sections(self):
        hb = SketchHB(rw_log(counter_program(locked=True)))
        accesses = hb.by_addr["counter"]
        assert all(
            not hb.concurrent(a, b)
            for a, b in zip(accesses, accesses[1:])
        )

    def test_trylock_guarded_predictions_are_penalized(self):
        def holder(ctx):
            ok = yield ctx.trylock("m")
            value = yield ctx.read("x")
            yield ctx.write("x", value + 1)
            if ok:
                yield ctx.unlock("m")

        def free(ctx):
            value = yield ctx.read("x")
            yield ctx.write("x", value + 1)

        def main(ctx):
            t1 = yield ctx.spawn(holder)
            t2 = yield ctx.spawn(free)
            yield ctx.join(t1)
            yield ctx.join(t2)

        program = Program(name="tl", main=main, initial_memory={"x": 0})
        races = predict_races(rw_log(program))
        assert races
        expected = round(
            (RACE_BASE_CONFIDENCE + LOCKSET_BONUS) * TRYLOCK_PENALTY, 4
        )
        assert {race.confidence for race in races} == {expected}


class TestDeterminism:
    def test_same_log_same_predictions(self):
        log = rw_log(counter_program(locked=False), seed=5)
        assert predict_races(log) == predict_races(log)
