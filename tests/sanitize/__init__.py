"""Tests for the predictive sanitizer (:mod:`repro.sanitize`)."""
