"""Atomicity-violation inference: unserializable windows from sketches."""

from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sanitize.atomicity import UNSERIALIZABLE, predict_atomicity

from tests.conftest import counter_program


def rw_log(program, seed=0):
    return record(program, sketch=SketchKind.RW, seed=seed).log


class TestPrediction:
    def test_lost_update_window_is_inferred(self):
        violations = predict_atomicity(rw_log(counter_program(locked=False)))
        assert violations
        assert any(v.pattern == "R-W-W" for v in violations)
        assert all(v.addr == "counter" for v in violations)

    def test_patterns_are_restricted_to_the_unserializable_four(self):
        violations = predict_atomicity(rw_log(counter_program(locked=False)))
        for violation in violations:
            assert tuple(violation.pattern.split("-")) in UNSERIALIZABLE

    def test_windows_are_local_remote_local_in_log_order(self):
        for violation in predict_atomicity(
            rw_log(counter_program(locked=False))
        ):
            assert violation.local_first.tid == violation.local_second.tid
            assert violation.remote.tid != violation.local_first.tid
            assert (
                violation.local_first.index
                < violation.remote.index
                < violation.local_second.index
            )

    def test_pins_rebuild_the_production_window(self):
        violations = predict_atomicity(rw_log(counter_program(locked=False)))
        for violation in violations:
            first, second = violation.pins()
            assert first.before == violation.local_first.ref()
            assert first.after == violation.remote.ref()
            assert second.before == violation.remote.ref()
            assert second.after == violation.local_second.ref()

    def test_locked_counter_has_no_windows(self):
        assert predict_atomicity(rw_log(counter_program(locked=True))) == []

    def test_coarser_logs_yield_no_predictions(self):
        log = record(
            counter_program(locked=False), sketch=SketchKind.SYNC, seed=0
        ).log
        assert predict_atomicity(log) == []

    def test_max_violations_caps_the_report(self):
        program = counter_program(nworkers=3, iters=5, locked=False)
        capped = predict_atomicity(rw_log(program), max_violations=2)
        assert len(capped) == 2
