"""Property-based tests over randomly generated concurrent programs.

Hypothesis generates small thread structures (random mixes of shared
accesses, locks and local work); the properties are the core invariants
the whole system rests on:

* executions are a pure function of (program, scheduler decisions);
* complete-log replay reproduces an execution exactly;
* the recorded sketch is exactly the visible subsequence of the trace;
* PIR replay of a sketch preserves the recorded order;
* happens-before is consistent with observed execution order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import HBAnalysis
from repro.core.pir import PIRScheduler
from repro.core.recorder import record_with_trace
from repro.core.sketches import SketchKind, event_visible
from repro.sim import (
    FixedOrderScheduler,
    Machine,
    MachineConfig,
    Program,
    RandomScheduler,
)

# ---------------------------------------------------------------------------
# Program generator: each worker is a list of small instructions.
# ---------------------------------------------------------------------------

ADDRS = ["x", "y", "z"]
LOCKS = ["m1", "m2"]

instruction = st.one_of(
    st.tuples(st.just("read"), st.sampled_from(ADDRS)),
    st.tuples(st.just("write"), st.sampled_from(ADDRS), st.integers(0, 9)),
    st.tuples(st.just("rmw"), st.sampled_from(ADDRS)),
    st.tuples(st.just("locked_write"), st.sampled_from(LOCKS),
              st.sampled_from(ADDRS), st.integers(0, 9)),
    st.tuples(st.just("rw_write"), st.sampled_from(ADDRS), st.integers(0, 9)),
    st.tuples(st.just("rw_read"), st.sampled_from(ADDRS)),
    st.tuples(st.just("sem_pair"),),
    st.tuples(st.just("local"),),
    st.tuples(st.just("bb"), st.sampled_from(["a", "b"])),
    st.tuples(st.just("syscall_out"), st.integers(0, 9)),
)

worker_body = st.lists(instruction, min_size=1, max_size=8)
program_spec = st.lists(worker_body, min_size=1, max_size=3)


def _worker(ctx, instructions):
    acc = 0
    for idx, ins in enumerate(instructions):
        kind = ins[0]
        if kind == "read":
            acc = yield ctx.read(ins[1])
        elif kind == "write":
            yield ctx.write(ins[1], ins[2])
        elif kind == "rmw":
            yield ctx.rmw(ins[1], lambda v: (v if isinstance(v, int) else 0) + 1)
        elif kind == "locked_write":
            yield ctx.lock(ins[1])
            yield ctx.write(ins[2], ins[3])
            yield ctx.unlock(ins[1])
        elif kind == "rw_write":
            yield ctx.wrlock("rwg")
            yield ctx.write(ins[1], ins[2])
            yield ctx.rwunlock("rwg")
        elif kind == "rw_read":
            yield ctx.rdlock("rwg")
            acc = yield ctx.read(ins[1])
            yield ctx.rwunlock("rwg")
        elif kind == "sem_pair":
            yield ctx.sem_acquire("gsem")
            yield ctx.local(1)
            yield ctx.sem_release("gsem")
        elif kind == "local":
            yield ctx.local(1)
        elif kind == "bb":
            yield ctx.bb(ins[1])
        elif kind == "syscall_out":
            yield ctx.output(ins[1])
    return acc


def _main(ctx, spec):
    tids = []
    for body in spec:
        tid = yield ctx.spawn(_worker, body)
        tids.append(tid)
    for tid in tids:
        yield ctx.join(tid)


def build(spec):
    return Program(
        "generated",
        _main,
        params={"spec": spec},
        initial_memory={a: 0 for a in ADDRS},
        semaphores={"gsem": 2},
    )


def run(program, scheduler):
    return Machine(program, scheduler, MachineConfig(ncpus=4)).run()


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 10_000))
def test_seed_determinism(spec, seed):
    a = run(build(spec), RandomScheduler(seed))
    b = run(build(spec), RandomScheduler(seed))
    assert a.schedule == b.schedule
    assert [e.signature() for e in a.events] == [e.signature() for e in b.events]
    assert [e.value for e in a.events] == [e.value for e in b.events]
    assert a.final_memory == b.final_memory
    assert a.stdout == b.stdout


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 10_000))
def test_complete_log_replay_is_exact(spec, seed):
    original = run(build(spec), RandomScheduler(seed))
    replay = run(build(spec), FixedOrderScheduler(original.schedule))
    assert not replay.diverged
    assert [e.signature() for e in replay.events] == [
        e.signature() for e in original.events
    ]
    assert replay.final_memory == original.final_memory


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 10_000),
       st.sampled_from([SketchKind.SYNC, SketchKind.BB, SketchKind.RW]))
def test_sketch_is_the_visible_subsequence(spec, seed, sketch):
    recorded, trace = record_with_trace(build(spec), sketch, seed=seed)
    visible = [e for e in trace.events if event_visible(sketch, e)]
    assert len(recorded.log) == len(visible)
    for entry, event in zip(recorded.log, visible):
        assert entry.tid == event.tid
        assert entry.kind is event.kind


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 10_000), st.integers(0, 100),
       st.sampled_from([SketchKind.SYNC, SketchKind.SYS, SketchKind.RW]))
def test_pir_replay_preserves_sketch_order(spec, record_seed, replay_seed, sketch):
    program = build(spec)
    recorded, _ = record_with_trace(program, sketch, seed=record_seed)
    scheduler = PIRScheduler(recorded.log, (), base_seed=replay_seed)
    trace = Machine(program, scheduler, MachineConfig(ncpus=4)).run()
    # Same program, same inputs: the replay must follow the sketch to its
    # end without diverging.
    assert not trace.diverged, trace.divergence
    visible = [
        (e.tid, e.kind) for e in trace.events if event_visible(sketch, e)
    ]
    recorded_pairs = [(entry.tid, entry.kind) for entry in recorded.log]
    assert visible[: len(recorded_pairs)] == recorded_pairs


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 10_000))
def test_happens_before_is_consistent_with_execution_order(spec, seed):
    trace = run(build(spec), RandomScheduler(seed))
    analysis = HBAnalysis(trace)
    # HB can only point forward: if a happens-before b, a executed first.
    events = trace.events
    for i in range(min(len(events), 40)):
        for j in range(i + 1, min(len(events), 40)):
            if analysis.ordered(j, i) and not analysis.ordered(i, j):
                raise AssertionError(
                    f"event {j} 'happens-before' earlier event {i}"
                )


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 10_000))
def test_races_are_truly_unordered(spec, seed):
    from repro.analysis import find_races

    trace = run(build(spec), RandomScheduler(seed))
    analysis = HBAnalysis(trace)
    for race in analysis.races:
        assert not analysis.ordered(race.first.gidx, race.second.gidx)
        assert race.first.tid != race.second.tid


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.lists(
            st.one_of(
                st.tuples(st.just("read"), st.sampled_from(["x", "y"])),
                st.tuples(st.just("write"), st.sampled_from(["x", "y"]),
                          st.integers(0, 2)),
                st.tuples(st.just("check_eq"), st.sampled_from(["x", "y"]),
                          st.integers(0, 2)),
            ),
            min_size=1,
            max_size=4,
        ),
        min_size=2,
        max_size=2,
    )
)
def test_systematic_search_covers_random_findings(spec):
    """Cross-validation: any failure signature a random-schedule sweep can
    hit on a tiny program must also be found by an exhaustive systematic
    search with an unbounded preemption budget."""
    from repro.core.systematic import systematic_search

    def _checked_worker(ctx, instructions):
        for ins in instructions:
            if ins[0] == "read":
                yield ctx.read(ins[1])
            elif ins[0] == "write":
                yield ctx.write(ins[1], ins[2])
            else:
                value = yield ctx.read(ins[1])
                yield ctx.check(
                    value == ins[2], f"{ins[1]} != {ins[2]}"
                )

    def _checked_main(ctx, spec):
        tids = []
        for body in spec:
            tid = yield ctx.spawn(_checked_worker, body)
            tids.append(tid)
        for tid in tids:
            yield ctx.join(tid)

    program = Program(
        "crossval",
        _checked_main,
        params={"spec": spec},
        initial_memory={"x": 0, "y": 0},
    )

    random_signatures = set()
    for seed in range(25):
        trace = run(program, RandomScheduler(seed))
        if trace.failed:
            random_signatures.add(trace.failure.signature())

    result = systematic_search(
        program, preemption_bound=99, max_schedules=50_000
    )
    assert result.exhausted
    assert random_signatures <= result.failure_signatures
