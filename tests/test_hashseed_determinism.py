"""Cross-process determinism: results must not depend on PYTHONHASHSEED.

Reproduction attempt counts feed the published experiment tables, so they
must be identical across interpreter invocations.  Python randomizes
string hashing per process; any result-affecting iteration over a set or
hash-ordered structure would leak that randomness into the numbers (this
regression actually happened: race *ordering* once depended on set
iteration order in the detector).
"""

import os
import subprocess
import sys

import pytest

_SNIPPET = """
from repro import SketchKind, record, reproduce, ExplorerConfig
from repro.apps import get_bug
from repro.analysis import find_races

spec = get_bug("pbzip2-order-free")
rec = record(spec.make_program(), SketchKind.SYS, seed=3, oracle=spec.oracle)
rep = reproduce(rec, ExplorerConfig(max_attempts=400))

from repro.core.recorder import record_with_trace
_, trace = record_with_trace(spec.make_program(), SketchKind.NONE, seed=1)
races = find_races(trace)
race_key = ";".join(f"{r.first.gidx}-{r.second.gidx}" for r in races[:20])

print(f"RESULT {rep.attempts} {rep.total_replay_steps} {race_key}")
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            return line
    pytest.fail(f"no RESULT line in output: {proc.stdout!r}")


def test_results_identical_across_hash_seeds():
    results = {_run_with_hashseed(seed) for seed in ("1", "7", "1234")}
    assert len(results) == 1, f"hash-seed-dependent results: {results}"
