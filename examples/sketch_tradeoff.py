#!/usr/bin/env python
"""The PRES trade-off, on one table: recording cost vs replay attempts.

For the miniMySQL binlog-rotation bug, sweep all six sketching mechanisms
and measure both sides of the paper's central trade: what the production
run pays (overhead %, log bytes) against what diagnosis pays (replay
attempts, total replay steps).  The two ends of the spectrum are extreme
— NONE records nothing but replays probabilistically; RW replays on the
first attempt but records at thousands of percent overhead — and the
paper's sweet spot (SYNC/SYS) sits in between.

Run:  python examples/sketch_tradeoff.py
"""

from repro import ExplorerConfig, SketchKind, record, reproduce
from repro.apps import get_bug
from repro.bench import find_failing_seed, format_table
from repro.core.sketches import SKETCH_ORDER
from repro.sim import MachineConfig

spec = get_bug("mysql-atom-log")
program = spec.make_program()
print(f"target: {spec.describe()}\n")

seed = find_failing_seed(spec)
print(f"failing production run: seed {seed}\n")

rows = []
for sketch in SKETCH_ORDER:
    recorded = record(
        program,
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=4),
        oracle=spec.oracle,
    )
    report = reproduce(recorded, ExplorerConfig(max_attempts=400))
    rows.append(
        [
            sketch.value,
            f"{recorded.stats.overhead_percent:.1f}",
            recorded.stats.log_bytes,
            report.attempts if report.success else f">{report.attempts}",
            report.total_replay_steps,
            len(report.winning_constraints),
        ]
    )

print(
    format_table(
        ["sketch", "overhead %", "log bytes", "attempts", "replay steps",
         "feedback flips"],
        rows,
        title="recording cost vs diagnosis cost (mysql-atom-log)",
    )
)

print(
    "\nreading the table: each step down the spectrum records more, costs\n"
    "more in production, and leaves less for the replayer to search.  PRES's\n"
    "claim is that the SYNC/SYS rows are the right deal: near-zero recording\n"
    "cost, and still only a handful of replay attempts."
)
