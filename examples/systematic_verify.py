#!/usr/bin/env python
"""Probabilistic reproduction vs. systematic proof, side by side.

PRES trades certainty for cheap production recording: it *probably*
reproduces the bug in a few attempts.  For small programs there is a
complementary tool with the opposite trade — CHESS-style bounded
systematic search — which enumerates every schedule up to a preemption
bound and can therefore *prove* a fix at that bound.

This example runs both on the same lost-update bug:

1. PRES pipeline: record a failing run with a SYNC sketch, reproduce it.
2. Systematic search: measure the bug's *preemption depth* (the smallest
   bound at which it is reachable at all).
3. Fix the program and let the systematic search prove the fix up to
   bound 3 — no schedule within the bound fails, exhaustively.

Run:  python examples/systematic_verify.py
"""

from repro import (
    ExplorerConfig,
    Program,
    SketchKind,
    record,
    reproduce,
    systematic_search,
)


def make_account_program(locked: bool) -> Program:
    """Two tellers posting to one account; the audit must balance."""

    def teller(ctx, posts):
        for _ in range(posts):
            if locked:
                yield ctx.lock("ledger")
            balance = yield ctx.read("balance")
            yield ctx.local(1)  # compute interest
            yield ctx.write("balance", balance + 10)
            if locked:
                yield ctx.unlock("ledger")

    def main(ctx):
        a = yield ctx.spawn(teller, 2)
        b = yield ctx.spawn(teller, 2)
        yield ctx.join(a)
        yield ctx.join(b)
        balance = yield ctx.read("balance")
        yield ctx.check(balance == 40, "audit mismatch: postings lost")

    name = "account-locked" if locked else "account"
    return Program(name, main, initial_memory={"balance": 0})


buggy = make_account_program(locked=False)

# -- 1. the PRES pipeline ------------------------------------------------------

failing = next(
    seed for seed in range(200)
    if record(buggy, SketchKind.SYNC, seed=seed).failed
)
recorded = record(buggy, SketchKind.SYNC, seed=failing)
report = reproduce(recorded, ExplorerConfig(max_attempts=100))
print(f"PRES: recorded seed {failing} "
      f"(overhead {recorded.stats.overhead_percent:.1f}%), "
      f"reproduced in {report.attempts} attempt(s)")

# -- 2. how deep is this bug? --------------------------------------------------

print("\nsystematic search, increasing preemption bounds:")
for bound in (0, 1, 2):
    result = systematic_search(buggy, preemption_bound=bound,
                               max_schedules=20_000)
    print(f"  bound {bound}: {result.describe()}")
    if result.found_failure:
        print(f"  -> the bug has preemption depth {bound}")
        break

# -- 3. prove the fix ----------------------------------------------------------

fixed = make_account_program(locked=True)
proof = systematic_search(fixed, preemption_bound=3, max_schedules=100_000)
print(f"\nfixed program: {proof.describe()}")
assert proof.exhausted and not proof.found_failure
print(
    "every schedule with up to 3 preemptions verified clean - that is a\n"
    "proof at this bound, not a probability. (PRES gives the cheap\n"
    "production-side recording; systematic search gives the certainty,\n"
    "where the state space allows it.)"
)
