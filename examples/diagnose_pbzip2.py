#!/usr/bin/env python
"""Diagnosing the PBZip2 use-after-free, the way a developer would.

Scenario: a parallel compressor crashes rarely in production.  We record
production runs with the cheap SYNC sketch; when one crashes, we hand the
recorded run to PRES, reproduce the crash, and then mine the *reproduced*
trace with the analysis toolbox (happens-before races, lockset report) to
localize the root cause — main() freeing the output queue while consumers
still drain it.

Run:  python examples/diagnose_pbzip2.py
"""

from repro import ExplorerConfig, SketchKind, record, replay_complete, reproduce
from repro.analysis import find_races, lockset_report
from repro.apps import get_bug

spec = get_bug("pbzip2-order-free")
program = spec.make_program()
print(f"target: {spec.describe()}\n")

# -- production: record every run cheaply until one crashes ------------------

failing = None
for seed in range(200):
    recorded = record(program, sketch=SketchKind.SYNC, seed=seed)
    if recorded.failed:
        failing = recorded
        print(f"run {seed}: CRASH -> {recorded.failure.describe()}")
        break
    if seed < 5:
        print(f"run {seed}: ok "
              f"(recording overhead {recorded.stats.overhead_percent:.1f}%)")
assert failing is not None

print(f"\nsketch recorded: {len(failing.log)} entries, "
      f"{failing.stats.log_bytes} bytes "
      f"(the full trace had {failing.stats.total_events} operations)")

# -- diagnosis: reproduce from the sketch ------------------------------------

report = reproduce(failing, ExplorerConfig(max_attempts=200))
print(f"\n{report.describe()}")
for attempt in report.records:
    print(f"  attempt {attempt.index}: {attempt.outcome} "
          f"(flip constraints: {attempt.n_constraints})")
assert report.success

# -- localize: analyze the reproduced execution ------------------------------

trace = replay_complete(program, report.complete_log)
print(f"\nreproduced failure: {trace.failure.describe()}")

races = find_races(trace)
free_races = [
    r for r in races
    if "free" in (r.first.kind.value, r.second.kind.value)
]
print(f"\nhappens-before analysis: {len(races)} races, "
      f"{len(free_races)} involving a free:")
for race in free_races[:5]:
    print(f"  {race.describe()}")

report_ls = lockset_report(trace)
print("\ninconsistently protected addresses (lockset):")
for addr in report_ls.inconsistent_addresses()[:8]:
    print(f"  {addr!r}")

print(
    "\ndiagnosis: main() frees the 'q_item' region after joining only the\n"
    "producer; nothing orders the consumers' block reads before that free.\n"
    "The fix (pbzip2 0.9.5) joins the consumers before queue teardown."
)
