#!/usr/bin/env python
"""Quickstart: record a buggy program, reproduce the bug, replay forever.

This is the smallest end-to-end tour of the public API:

1. write a concurrent program against the simulator API (generator
   threads yielding operations);
2. find a "production run" where the bug bites (a scheduler seed);
3. record it with a cheap SYNC sketch;
4. let the partial-information replayer search the unrecorded schedule
   space until the failure re-triggers;
5. replay the captured interleaving deterministically, every time.

Run:  python examples/quickstart.py
"""

from repro import (
    ExplorerConfig,
    Program,
    SketchKind,
    record,
    replay_complete,
    reproduce,
)


# -- 1. a tiny buggy program -------------------------------------------------
#
# A worker publishes a result and then raises a flag; the consumer checks
# the flag... but reads the result without any synchronization ordering
# the two (a classic order violation).


def producer(ctx):
    yield ctx.local(3)  # compute the answer
    yield ctx.write("answer", 42)
    yield ctx.write("published", True)


def consumer(ctx):
    yield ctx.local(1)  # a bit of unrelated setup
    answer = yield ctx.read("answer")  # BUG: may run before the write
    yield ctx.check(answer == 42, "consumed the answer before it existed")


def main(ctx):
    p = yield ctx.spawn(producer)
    c = yield ctx.spawn(consumer)
    yield ctx.join(p)
    yield ctx.join(c)


program = Program(
    name="quickstart",
    main=main,
    initial_memory={"answer": 0, "published": False},
)


# -- 2. find a failing production run ---------------------------------------

failing_seed = None
for seed in range(100):
    if record(program, sketch=SketchKind.SYNC, seed=seed).failed:
        failing_seed = seed
        break
assert failing_seed is not None, "the bug never bit in 100 runs"
print(f"production run with seed {failing_seed} failed")

# -- 3. record it with a cheap sketch ----------------------------------------

recorded = record(program, sketch=SketchKind.SYNC, seed=failing_seed)
print(f"recorded: {recorded.describe()}")
print(f"  sketch entries: {len(recorded.log)}")
print(f"  recording overhead: {recorded.stats.overhead_percent:.1f}%")

# -- 4. reproduce via partial-information replay -----------------------------

report = reproduce(recorded, ExplorerConfig(max_attempts=100))
print(f"reproduction: {report.describe()}")
for attempt in report.records:
    print(
        f"  attempt {attempt.index}: {attempt.outcome}"
        + (f" [{attempt.detail}]" if attempt.detail else "")
    )
assert report.success

# -- 5. replay deterministically, every time ----------------------------------

for i in range(3):
    trace = replay_complete(program, report.complete_log)
    print(f"deterministic replay #{i + 1}: {trace.failure.describe()}")

print("\nthe bug is captured: every future replay reproduces it exactly.")
