#!/usr/bin/env python
"""Hunting a lock-order-inversion deadlock in the miniOpenLDAP server.

Deadlocks are the friendliest bug class for sketch-based replay: the SYNC
sketch records exactly the lock operations whose order walks the system
into the cycle, so replaying the sketch drives straight back into the
deadlock — typically on the first attempt.  This example reproduces the
inversion, prints the cycle, and verifies that the fixed lock ordering
(`inversion=False`) survives the same schedules.

Run:  python examples/deadlock_hunt.py
"""

from repro import ExplorerConfig, SketchKind, record, replay_complete, reproduce
from repro.apps import get_bug
from repro.sim import Machine, MachineConfig, RandomScheduler

spec = get_bug("openldap-deadlock")
program = spec.make_program()
print(f"target: {spec.describe()}\n")

# -- find a production deadlock -----------------------------------------------

failing_seed = None
for seed in range(200):
    recorded = record(program, sketch=SketchKind.SYNC, seed=seed)
    if recorded.failed:
        failing_seed = seed
        break
assert failing_seed is not None
print(f"production run {failing_seed} deadlocked:")
print(f"  {recorded.failure.describe()}")
print(f"  threads in the cycle: {recorded.failure.involved_tids}")
print(f"  sketch: {len(recorded.log)} lock/thread events, "
      f"{recorded.stats.log_bytes} bytes, "
      f"overhead {recorded.stats.overhead_percent:.1f}%\n")

# -- reproduce ----------------------------------------------------------------

report = reproduce(recorded, ExplorerConfig(max_attempts=100))
print(report.describe())
assert report.success

trace = replay_complete(program, report.complete_log)
print(f"replayed deadlock: {trace.failure.describe()}")

# Show the fatal tail: the last lock operations each deadlocked thread
# performed before the machine proved the cycle.
print("\nfatal tail (last lock events per deadlocked thread):")
for tid in trace.failure.involved_tids:
    lock_events = [
        e for e in trace.events_of(tid) if e.kind.value in ("lock", "unlock")
    ]
    tail = " -> ".join(f"{e.kind.value}({e.obj})" for e in lock_events[-3:])
    print(f"  T{tid}: {tail}")

# -- verify the fix -----------------------------------------------------------

fixed = spec.make_program(inversion=False)
print("\nverifying the fixed lock ordering on 100 random schedules ...")
for seed in range(100):
    trace = Machine(fixed, RandomScheduler(seed), MachineConfig(ncpus=4)).run()
    assert not trace.failed, f"fixed server still failed: {trace.failure.describe()}"
print("fixed server: 100/100 clean runs")
