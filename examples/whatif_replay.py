#!/usr/bin/env python
"""What-if replay: vary the ending of a captured bug, then verify the fix.

Once PRES has a deterministic reproduction, the complete log is more than
a replay button — it is a *position* you can explore from.  This example:

1. captures the miniMySQL binlog bug and prints the failure timeline;
2. replays the captured schedule up to just before the fatal window and
   lets a fresh scheduler vary the ending ("was this a one-off ordering,
   or is the state already poisoned?");
3. runs the same what-if sweep against the fixed build, showing that no
   ending fails once the patch is in.

Run:  python examples/whatif_replay.py
"""

from repro import ExplorerConfig, SketchKind, record, replay_complete, reproduce
from repro.analysis import failure_window
from repro.apps import get_bug
from repro.bench import find_failing_seed
from repro.core.recorder import apply_oracle
from repro.sim import Machine, MachineConfig, PrefixScheduler, RandomScheduler

spec = get_bug("mysql-atom-log")
program = spec.make_program()
print(f"target: {spec.describe()}\n")

# -- 1. capture the bug -------------------------------------------------------

seed = find_failing_seed(spec)
recorded = record(program, sketch=SketchKind.SYNC, seed=seed, oracle=spec.oracle)
report = reproduce(recorded, ExplorerConfig(max_attempts=400))
assert report.success
print(f"captured after {report.attempts} attempt(s)")

trace = replay_complete(program, report.complete_log, oracle=spec.oracle)
print("\ntimeline around the failure:")
print(failure_window(trace, context=8))

# -- 2. what-if: how early is the run already doomed? -------------------------
#
# Bisect over prefix lengths: for each cut, replay the captured schedule up
# to the cut and let 15 fresh schedules finish the run.  The cut where
# endings stop surviving brackets the fatal window — the point where the
# lost binlog entry actually happened, far before the end-of-run assert.

def doomed_fraction(cut, endings=15):
    failed = 0
    for ending_seed in range(endings):
        scheduler = PrefixScheduler(
            trace.schedule[:cut], RandomScheduler(ending_seed)
        )
        what_if = Machine(program, scheduler, report.complete_log.config).run()
        if apply_oracle(what_if, spec.oracle) is not None:
            failed += 1
    return failed / endings

print("\nwhat-if sweep: replay a prefix, vary the ending x15")
total = len(trace.schedule)
for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
    cut = int(total * fraction) - 2
    doomed = doomed_fraction(cut)
    bar = "#" * round(doomed * 20)
    print(f"  prefix {fraction:4.0%} ({cut:4d} steps): "
          f"{doomed:4.0%} of endings fail  {bar}")
print("  -> once the prefix covers the racy append window, every ending is "
      "doomed:\n     the damage (a lost entry) precedes the assert by "
      "hundreds of steps.")

# -- 3. the same sweep against the fixed build --------------------------------

fixed = spec.make_fixed_program()
print("\nsame sweep against the patched server (append holds LOCK_log):")
fixed_failures = 0
for ending_seed in range(30):
    what_if = Machine(
        fixed, RandomScheduler(ending_seed), report.complete_log.config
    ).run()
    if apply_oracle(what_if, spec.oracle) is not None:
        fixed_failures += 1
print(f"  {fixed_failures}/30 runs fail after the fix")
assert fixed_failures == 0
print("\nfix verified: no schedule reaches the lost-entry state anymore.")
